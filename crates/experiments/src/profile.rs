//! Quick vs. full reproduction profiles.
//!
//! The paper's experiments run 2-minute flows with 10 trials per
//! configuration on a testbed. A faithful rerun of every figure at that
//! scale is hours of simulation; the default **quick** profile preserves
//! every experimental *shape* while thinning durations, trial counts and
//! sweep grids so `repro all` completes in minutes. `--full` restores
//! the paper-scale parameters.

/// Global experiment sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Flow duration, seconds (paper: 120).
    pub duration_secs: f64,
    /// Trials per configuration (paper: 10).
    pub trials: u32,
    /// Maximum number of buffer points per sweep.
    pub buffer_points: usize,
    /// Flow-count scale for the big NE searches: the paper's Fig. 9 uses
    /// 50 flows; quick mode uses 20 (the paper itself notes 25-flow runs
    /// show the same trends).
    pub ne_flows: u32,
    /// Trials for NE searches (cheaper per-point grids).
    pub ne_trials: u32,
    /// Forward-path (data) random wire-loss probability applied to every
    /// scenario (`repro --loss`; the paper's testbed is clean, so 0).
    pub loss: f64,
    /// Reverse-path (ACK) random wire-loss probability (`repro --ack-loss`).
    pub ack_loss: f64,
    /// Model-guided adaptive NE search (`repro --adaptive`): seed the
    /// search bracket from Eq. (25) and refine with simulations instead
    /// of running every distribution of the dense grid.
    pub adaptive: bool,
    /// Convergence-aware early termination (`repro --early-stop`):
    /// `(epsilon, dwell)` for the per-flow steady-state detector, `None`
    /// for fixed-horizon runs (the bit-identical default).
    pub early_stop: Option<(f64, u32)>,
    /// Which simulation backend runs the scenarios (`repro --backend`):
    /// the packet DES (default, ground truth) or the fluid/ODE model
    /// (µs-scale, envelope-restricted; see `bbrdom-fluid`).
    pub backend: crate::scenario::BackendSpec,
    /// Open-loop background workload attached to every scenario
    /// (`repro --workload`): finite flows arriving during each run,
    /// reported as per-CCA FCT percentiles. `None` (the default) keeps
    /// every experiment bit-identical to historical behavior.
    pub workload: Option<crate::scenario::WorkloadSpec>,
    /// Bottleneck count of the `ext-parkinglot` chain (`repro
    /// --parkinglot-hops`).
    pub parkinglot_hops: u32,
    /// Run every payoff cell with the dumbbell expressed as an explicit
    /// topology (`repro --dumbbell-as-topology`): results are
    /// bit-identical to the implicit dumbbell (proven by the equivalence
    /// suite and the CI diff), but the scenarios occupy distinct cache
    /// keys, exercising the multi-hop code path end to end.
    pub dumbbell_topology: bool,
}

impl Profile {
    /// Paper-scale reproduction.
    pub fn full() -> Self {
        Profile {
            duration_secs: 120.0,
            trials: 10,
            buffer_points: 60,
            ne_flows: 50,
            ne_trials: 3,
            loss: 0.0,
            ack_loss: 0.0,
            adaptive: false,
            early_stop: None,
            backend: crate::scenario::BackendSpec::Des,
            workload: None,
            parkinglot_hops: 3,
            dumbbell_topology: false,
        }
    }

    /// Laptop-scale reproduction (default).
    pub fn quick() -> Self {
        Profile {
            duration_secs: 30.0,
            trials: 3,
            buffer_points: 12,
            ne_flows: 20,
            ne_trials: 1,
            loss: 0.0,
            ack_loss: 0.0,
            adaptive: false,
            early_stop: None,
            backend: crate::scenario::BackendSpec::Des,
            workload: None,
            parkinglot_hops: 3,
            dumbbell_topology: false,
        }
    }

    /// Even smaller: used by `cargo test`/`cargo bench` so the harness
    /// code paths are exercised end-to-end in seconds.
    pub fn smoke() -> Self {
        Profile {
            duration_secs: 8.0,
            trials: 1,
            buffer_points: 4,
            ne_flows: 6,
            ne_trials: 1,
            loss: 0.0,
            ack_loss: 0.0,
            adaptive: false,
            early_stop: None,
            backend: crate::scenario::BackendSpec::Des,
            workload: None,
            parkinglot_hops: 2,
            dumbbell_topology: false,
        }
    }

    /// Attach the profile's open-loop workload (`--workload`), if any,
    /// to every scenario of a figure batch. A no-op for the default
    /// `workload: None`, so historical figures stay bit-identical.
    /// Scenarios that already carry a workload (e.g. `ext-churn`'s own
    /// grid) are left alone.
    pub fn apply_workload(&self, scenarios: &mut [crate::scenario::Scenario]) {
        if let Some(wl) = self.workload {
            for s in scenarios.iter_mut() {
                s.workload.get_or_insert(wl);
            }
        }
    }

    /// The [`crate::scenario::FaultSpec`] implied by the profile's
    /// `--loss`/`--ack-loss` impairments (no-op for the clean default).
    pub fn fault_spec(&self) -> crate::scenario::FaultSpec {
        crate::scenario::FaultSpec {
            loss_fwd: self.loss,
            loss_ack: self.ack_loss,
            ..Default::default()
        }
    }

    /// Default supervised-sweep watchdog (`--supervise` without
    /// `--watchdog`). The watchdog must comfortably exceed an *honest*
    /// trial's wall-clock time, which scales with the profile's
    /// simulated duration — a fixed 30 s would kill healthy workers
    /// mid-trial at paper scale (`--full` runs 2-minute flows), while
    /// smoke trials livelock-detect fastest with the floor. Heartbeats
    /// stop at `watchdog / 2` of per-trial stall, so effective livelock
    /// latency is about `1.5 ×` this value.
    pub fn supervise_watchdog(&self) -> std::time::Duration {
        std::time::Duration::from_secs_f64((self.duration_secs * 4.0).clamp(30.0, 600.0))
    }

    /// Thin `points` down to at most `self.buffer_points`, always keeping
    /// the first and last.
    pub fn thin(&self, points: Vec<f64>) -> Vec<f64> {
        if points.len() <= self.buffer_points || self.buffer_points < 2 {
            return points;
        }
        let n = points.len();
        let m = self.buffer_points;
        (0..m).map(|i| points[i * (n - 1) / (m - 1)]).collect()
    }
}

impl Default for Profile {
    fn default() -> Self {
        Profile::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_workload_fills_only_bare_scenarios() {
        use crate::scenario::{Scenario, WorkloadSpec};
        use bbrdom_cca::CcaKind;

        let own = WorkloadSpec::web(CcaKind::Bbr, 10.0, 15.0);
        let mut scenarios = vec![
            Scenario::versus(50.0, 40.0, 4.0, 1, CcaKind::Bbr, 1, 10.0, 1),
            Scenario::versus(50.0, 40.0, 4.0, 1, CcaKind::Bbr, 1, 10.0, 2).with_workload(Some(own)),
        ];

        let quiet = Profile::smoke();
        quiet.apply_workload(&mut scenarios);
        assert_eq!(scenarios[0].workload, None);

        let mut churned = Profile::smoke();
        let flag = WorkloadSpec::web(CcaKind::Cubic, 80.0, 20.0);
        churned.workload = Some(flag);
        churned.apply_workload(&mut scenarios);
        assert_eq!(scenarios[0].workload, Some(flag));
        // A scenario that already carries its own workload keeps it.
        assert_eq!(scenarios[1].workload, Some(own));
    }

    #[test]
    fn thinning_keeps_endpoints() {
        let p = Profile {
            buffer_points: 5,
            ..Profile::quick()
        };
        let pts: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let thinned = p.thin(pts);
        assert_eq!(thinned.len(), 5);
        assert_eq!(thinned[0], 0.0);
        assert_eq!(*thinned.last().unwrap(), 29.0);
    }

    #[test]
    fn thinning_noop_when_short() {
        let p = Profile::quick();
        let pts = vec![1.0, 2.0, 3.0];
        assert_eq!(p.thin(pts.clone()), pts);
    }

    #[test]
    fn watchdog_tracks_profile_scale() {
        let smoke = Profile::smoke().supervise_watchdog();
        let quick = Profile::quick().supervise_watchdog();
        let full = Profile::full().supervise_watchdog();
        assert!(smoke.as_secs() >= 30, "floor keeps spawn/startup slack");
        assert!(quick > smoke && full > quick, "watchdog scales with cost");
        assert!(full.as_secs() <= 600, "bounded even at paper scale");
    }

    #[test]
    fn profiles_are_ordered_by_cost() {
        let f = Profile::full();
        let q = Profile::quick();
        let s = Profile::smoke();
        assert!(f.duration_secs > q.duration_secs);
        assert!(q.duration_secs > s.duration_secs);
        assert!(f.trials >= q.trials && q.trials >= s.trials);
    }
}
