//! Parallel scenario execution.
//!
//! Simulations are CPU-bound and independent, so we fan out over OS
//! threads with `std::thread::scope` (per the networking guides: an
//! async runtime buys nothing for compute-bound work). Results come
//! back in input order regardless of completion order.
//!
//! A panic inside one `Scenario::run` does not take down the whole
//! sweep opaquely: the payload is caught on the worker, tagged with the
//! scenario index, and re-raised from the calling thread once all other
//! scenarios have finished — so a 500-point sweep failure names the one
//! point that died.

use crate::scenario::{Scenario, TrialResult};
use bbrdom_netsim::json::{self, Value};
use std::any::Any;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Render a caught panic payload the way `panic!` would display it.
fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run all scenarios, in parallel, returning results in input order.
///
/// # Panics
///
/// If any scenario panics, re-raises the first (lowest-index) panic as
/// `"scenario <i> panicked: <original message>"`.
pub fn run_all(scenarios: &[Scenario]) -> Vec<TrialResult> {
    run_all_with_workers(scenarios, default_workers())
}

/// Run with an explicit worker count (tests use 2 for determinism of
/// resource use; results are order-stable regardless).
pub fn run_all_with_workers(scenarios: &[Scenario], workers: usize) -> Vec<TrialResult> {
    let workers = workers.max(1).min(scenarios.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<TrialResult>>> =
        scenarios.iter().map(|_| Mutex::new(None)).collect();
    let panics: Mutex<Vec<(usize, Box<dyn Any + Send>)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= scenarios.len() {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| scenarios[i].run())) {
                    Ok(result) => *results[i].lock().expect("result slot poisoned") = Some(result),
                    Err(payload) => panics
                        .lock()
                        .expect("panic log poisoned")
                        .push((i, payload)),
                }
            });
        }
    });

    let mut panics = panics.into_inner().expect("panic log poisoned");
    if !panics.is_empty() {
        panics.sort_by_key(|(i, _)| *i);
        let (index, payload) = panics.swap_remove(0);
        panic!("scenario {index} panicked: {}", payload_message(&*payload));
    }

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("scenario not executed")
        })
        .collect()
}

/// Convenience: run `trials` seeds of a scenario template and return the
/// per-seed results. `make` receives the seed.
pub fn run_trials<F>(trials: u32, make: F) -> Vec<TrialResult>
where
    F: Fn(u64) -> Scenario,
{
    let scenarios: Vec<Scenario> = (0..trials as u64).map(make).collect();
    run_all(&scenarios)
}

/// Structured failure record for one trial in a fail-soft sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialFailure {
    /// Index of the failing scenario in the sweep's input order.
    pub index: usize,
    /// The error (panic message, budget trip, or audit violation).
    pub error: String,
    /// Human-readable scenario summary for the report.
    pub context: String,
}

/// The fail-soft result of one trial: the measurement, or a structured
/// failure that the rest of the sweep survived.
#[derive(Debug, Clone)]
pub enum TrialOutcome {
    Ok(TrialResult),
    Failed(TrialFailure),
}

impl TrialOutcome {
    /// The result, if the trial succeeded.
    pub fn ok(&self) -> Option<&TrialResult> {
        match self {
            TrialOutcome::Ok(r) => Some(r),
            TrialOutcome::Failed(_) => None,
        }
    }

    /// The failure, if the trial failed.
    pub fn failure(&self) -> Option<&TrialFailure> {
        match self {
            TrialOutcome::Ok(_) => None,
            TrialOutcome::Failed(f) => Some(f),
        }
    }
}

/// Configuration for a fail-soft, resumable sweep ([`run_sweep`]).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker threads (defaults to the machine's parallelism).
    pub workers: usize,
    /// Per-scenario event budget (livelock guard; `None` = unlimited).
    pub event_budget: Option<u64>,
    /// Per-scenario wall-clock budget (`None` = unlimited).
    pub wall_budget: Option<std::time::Duration>,
    /// JSONL journal path. Completed trials (successes *and* structured
    /// failures) are appended as they finish; a rerun with the same
    /// journal reuses entries whose scenario still matches instead of
    /// re-running them.
    pub journal: Option<PathBuf>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            workers: default_workers(),
            event_budget: None,
            wall_budget: None,
            journal: None,
        }
    }
}

/// One-line scenario summary used as failure context.
fn scenario_context(s: &Scenario) -> String {
    format!(
        "{} flows, {} Mbps, buffer {} BDP, {} s, seed {}",
        s.flows.len(),
        s.mbps,
        s.buffer_bdp,
        s.duration_secs,
        s.seed
    )
}

/// Serialize one finished trial as a journal line.
fn journal_line(index: usize, scenario_json: &str, outcome: &TrialOutcome) -> String {
    let mut v = Value::object();
    v.set("index", Value::U64(index as u64))
        .set("scenario", Value::Str(scenario_json.to_string()));
    match outcome {
        TrialOutcome::Ok(r) => {
            v.set("ok", true.into()).set("result", r.to_json_value());
        }
        TrialOutcome::Failed(f) => {
            v.set("ok", false.into())
                .set("error", Value::Str(f.error.clone()))
                .set("context", Value::Str(f.context.clone()));
        }
    }
    v.to_json()
}

/// Parse one journal line back into `(index, scenario_json, outcome)`.
/// Returns `None` for malformed or truncated lines (e.g. a crash mid-write),
/// which are simply re-run.
fn parse_journal_line(line: &str) -> Option<(usize, String, TrialOutcome)> {
    let v = json::parse(line).ok()?;
    let index = v.get("index")?.as_u64()? as usize;
    let scenario_json = v.get("scenario")?.as_str()?.to_string();
    let ok = match v.get("ok")? {
        Value::Bool(b) => *b,
        _ => return None,
    };
    let outcome = if ok {
        TrialOutcome::Ok(TrialResult::from_json_value(v.get("result")?).ok()?)
    } else {
        TrialOutcome::Failed(TrialFailure {
            index,
            error: v.get("error")?.as_str()?.to_string(),
            context: v
                .get("context")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
        })
    };
    Some((index, scenario_json, outcome))
}

/// Run all scenarios fail-soft: one panicking, livelocked, or invalid
/// scenario becomes a structured [`TrialOutcome::Failed`] while the rest
/// of the sweep completes. Outcomes come back in input order.
///
/// With [`SweepConfig::journal`] set, finished trials are checkpointed as
/// JSONL; rerunning the same sweep resumes, re-using every journal entry
/// whose `(index, scenario)` still matches and re-running only the rest.
pub fn run_sweep(scenarios: &[Scenario], config: &SweepConfig) -> Vec<TrialOutcome> {
    let scenario_jsons: Vec<String> = scenarios.iter().map(|s| s.to_json()).collect();
    let outcomes: Vec<Mutex<Option<TrialOutcome>>> =
        scenarios.iter().map(|_| Mutex::new(None)).collect();

    // Resume: pre-fill slots from the journal when the stored scenario
    // still matches the one we were asked to run.
    if let Some(path) = &config.journal {
        if let Ok(file) = std::fs::File::open(path) {
            for line in std::io::BufReader::new(file).lines() {
                let Ok(line) = line else { break };
                let Some((index, stored, outcome)) = parse_journal_line(&line) else {
                    continue;
                };
                if index < scenarios.len() && stored == scenario_jsons[index] {
                    *outcomes[index].lock().expect("outcome slot poisoned") = Some(outcome);
                }
            }
        }
    }

    let pending: Vec<usize> = (0..scenarios.len())
        .filter(|&i| outcomes[i].lock().expect("outcome slot poisoned").is_none())
        .collect();

    let journal: Option<Mutex<std::fs::File>> = config.journal.as_ref().map(|path| {
        Mutex::new(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| panic!("cannot open sweep journal {}: {e}", path.display())),
        )
    });

    let workers = config.workers.max(1).min(pending.len().max(1));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let slot = next.fetch_add(1, Ordering::Relaxed);
                if slot >= pending.len() {
                    break;
                }
                let i = pending[slot];
                let outcome = match catch_unwind(AssertUnwindSafe(|| {
                    scenarios[i].try_run_with(config.event_budget, config.wall_budget)
                })) {
                    Ok(Ok(result)) => TrialOutcome::Ok(result),
                    Ok(Err(err)) => TrialOutcome::Failed(TrialFailure {
                        index: i,
                        error: err.to_string(),
                        context: scenario_context(&scenarios[i]),
                    }),
                    Err(payload) => TrialOutcome::Failed(TrialFailure {
                        index: i,
                        error: format!("panic: {}", payload_message(&*payload)),
                        context: scenario_context(&scenarios[i]),
                    }),
                };
                if let Some(journal) = &journal {
                    let line = journal_line(i, &scenario_jsons[i], &outcome);
                    let mut file = journal.lock().expect("journal poisoned");
                    // A failed write is not fatal: the sweep still
                    // completes, the trial just won't resume for free.
                    let _ = writeln!(file, "{line}");
                    let _ = file.flush();
                }
                *outcomes[i].lock().expect("outcome slot poisoned") = Some(outcome);
            });
        }
    });

    outcomes
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("outcome slot poisoned")
                .expect("scenario not executed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbrdom_cca::CcaKind;

    fn tiny(seed: u64) -> Scenario {
        Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 3.0, seed)
    }

    #[test]
    fn results_are_in_input_order() {
        let scenarios: Vec<Scenario> = (0..6).map(tiny).collect();
        let parallel = run_all_with_workers(&scenarios, 4);
        let serial: Vec<_> = scenarios.iter().map(|s| s.run()).collect();
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.throughput_mbps, s.throughput_mbps);
        }
    }

    #[test]
    fn single_worker_works() {
        let scenarios: Vec<Scenario> = (0..3).map(tiny).collect();
        let results = run_all_with_workers(&scenarios, 1);
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn run_trials_uses_distinct_seeds() {
        let results = run_trials(3, tiny);
        assert_eq!(results.len(), 3);
        assert_ne!(results[0].throughput_mbps, results[1].throughput_mbps);
    }

    #[test]
    fn empty_input_is_fine() {
        let results = run_all(&[]);
        assert!(results.is_empty());
    }

    #[test]
    fn worker_panic_reports_scenario_index_and_message() {
        // Scenario 1 has no flows: `run` panics with "scenario needs flows".
        let mut scenarios: Vec<Scenario> = (0..3).map(tiny).collect();
        scenarios[1].flows.clear();
        let caught = catch_unwind(AssertUnwindSafe(|| run_all_with_workers(&scenarios, 2)))
            .expect_err("sweep with a panicking scenario must panic");
        let msg = payload_message(&*caught);
        assert!(
            msg.contains("scenario 1") && msg.contains("needs flows"),
            "unhelpful panic message: {msg}"
        );
    }

    #[test]
    fn earliest_panicking_scenario_wins() {
        let mut scenarios: Vec<Scenario> = (0..4).map(tiny).collect();
        scenarios[0].flows.clear();
        scenarios[2].flows.clear();
        let caught = catch_unwind(AssertUnwindSafe(|| run_all_with_workers(&scenarios, 4)))
            .expect_err("sweep must panic");
        let msg = payload_message(&*caught);
        assert!(
            msg.contains("scenario 0"),
            "expected scenario 0 first: {msg}"
        );
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbrdom-sweep-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn sweep_survives_a_failing_scenario() {
        // Scenario 1 is invalid (no flows): the sweep must record a
        // structured failure at index 1 and still run the other two.
        let mut scenarios: Vec<Scenario> = (0..3).map(tiny).collect();
        scenarios[1].flows.clear();
        let cfg = SweepConfig {
            workers: 2,
            ..SweepConfig::default()
        };
        let outcomes = run_sweep(&scenarios, &cfg);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].ok().is_some());
        assert!(outcomes[2].ok().is_some());
        let failure = outcomes[1].failure().expect("scenario 1 must fail");
        assert_eq!(failure.index, 1);
        assert!(
            failure.error.contains("no flows"),
            "unhelpful error: {}",
            failure.error
        );
        assert!(failure.context.contains("0 flows"));
    }

    #[test]
    fn sweep_event_budget_fails_soft() {
        // 1000 events is far too few for a 3-second trial: the budget
        // trips and is reported as a structured failure, not a panic.
        let scenarios: Vec<Scenario> = (0..2).map(tiny).collect();
        let cfg = SweepConfig {
            workers: 2,
            event_budget: Some(1_000),
            ..SweepConfig::default()
        };
        let outcomes = run_sweep(&scenarios, &cfg);
        for o in &outcomes {
            let f = o.failure().expect("budget must trip");
            assert!(
                f.error.contains("event budget"),
                "unhelpful error: {}",
                f.error
            );
        }
    }

    #[test]
    fn sweep_journal_resumes_without_rerunning() {
        let path = temp_path("resume");
        let _ = std::fs::remove_file(&path);
        let scenarios: Vec<Scenario> = (0..3).map(tiny).collect();
        let cfg = SweepConfig {
            workers: 2,
            journal: Some(path.clone()),
            ..SweepConfig::default()
        };
        let first = run_sweep(&scenarios, &cfg);
        assert!(first.iter().all(|o| o.ok().is_some()));

        // Tamper with trial 0's journaled throughput. If the resumed
        // sweep re-ran the scenario it would recompute the honest value;
        // seeing 999 back proves the journal entry was reused verbatim.
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered: String = text
            .lines()
            .map(|line| {
                let (index, _, outcome) = parse_journal_line(line).expect("valid journal line");
                if index == 0 {
                    let mut r = outcome.ok().unwrap().clone();
                    r.throughput_mbps[0] = 999.0;
                    let mut out = journal_line(0, &scenarios[0].to_json(), &TrialOutcome::Ok(r));
                    out.push('\n');
                    out
                } else {
                    format!("{line}\n")
                }
            })
            .collect();
        std::fs::write(&path, tampered).unwrap();

        let resumed = run_sweep(&scenarios, &cfg);
        assert_eq!(resumed[0].ok().unwrap().throughput_mbps[0], 999.0);
        // Untampered entries round-trip bit-exactly.
        assert_eq!(
            resumed[1].ok().unwrap().throughput_mbps,
            first[1].ok().unwrap().throughput_mbps
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sweep_journal_ignores_stale_entries() {
        let path = temp_path("stale");
        let _ = std::fs::remove_file(&path);
        let scenarios: Vec<Scenario> = (0..2).map(tiny).collect();
        let cfg = SweepConfig {
            workers: 1,
            journal: Some(path.clone()),
            ..SweepConfig::default()
        };
        let first = run_sweep(&scenarios, &cfg);

        // Change scenario 1 (different seed): its journal entry is stale
        // and must be re-run; scenario 0 still resumes from the journal.
        let mut changed = scenarios.clone();
        changed[1] = tiny(77);
        let resumed = run_sweep(&changed, &cfg);
        assert_eq!(
            resumed[0].ok().unwrap().throughput_mbps,
            first[0].ok().unwrap().throughput_mbps
        );
        assert_ne!(
            resumed[1].ok().unwrap().throughput_mbps,
            first[1].ok().unwrap().throughput_mbps
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sweep_journal_skips_corrupt_lines() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{truncated\nnot json at all\n").unwrap();
        let scenarios: Vec<Scenario> = vec![tiny(3)];
        let cfg = SweepConfig {
            workers: 1,
            journal: Some(path.clone()),
            ..SweepConfig::default()
        };
        let outcomes = run_sweep(&scenarios, &cfg);
        assert!(
            outcomes[0].ok().is_some(),
            "corrupt journal must be ignored"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_outcomes_are_journaled_and_resumed() {
        let path = temp_path("failed");
        let _ = std::fs::remove_file(&path);
        let mut scenarios: Vec<Scenario> = (0..2).map(tiny).collect();
        scenarios[0].flows.clear();
        let cfg = SweepConfig {
            workers: 1,
            journal: Some(path.clone()),
            ..SweepConfig::default()
        };
        let first = run_sweep(&scenarios, &cfg);
        let resumed = run_sweep(&scenarios, &cfg);
        assert_eq!(
            resumed[0].failure().expect("still failed"),
            first[0].failure().expect("failed")
        );
        // The journal holds exactly the two first-run lines: the resumed
        // sweep re-ran nothing and appended nothing.
        let lines = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(lines, 2);
        let _ = std::fs::remove_file(&path);
    }
}
