//! Parallel scenario execution — the public façade over the
//! [`crate::engine`] worker-pool/cache engine.
//!
//! Simulations are CPU-bound and independent, so batches fan out over a
//! fixed pool of OS threads (per the networking guides: an async runtime
//! buys nothing for compute-bound work). Results come back in input
//! order regardless of completion order, and — because every simulation
//! is a pure function of its [`Scenario`] — a parallel run is
//! bit-identical to a serial one. Pool size comes from `--jobs` /
//! `BBRDOM_JOBS` / the machine's parallelism; identical and previously
//! seen scenarios are served from the engine's content-addressed result
//! cache instead of being re-simulated.
//!
//! Two interfaces:
//!
//! * [`run_all`] — strict: a failing scenario panics, naming the lowest
//!   failing index (figure sweeps, where any failure is a bug);
//! * [`run_sweep`] — fail-soft and resumable: failures become structured
//!   [`TrialOutcome::Failed`] records, budgets guard against livelock,
//!   and a JSONL journal checkpoints finished trials for resume.

use crate::engine::Engine;
use crate::scenario::{Scenario, TrialResult};
use std::any::Any;
use std::path::PathBuf;

/// Number of worker threads to use by default.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Render a caught panic payload the way `panic!` would display it.
pub(crate) fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run all scenarios, in parallel, returning results in input order.
///
/// # Panics
///
/// If any scenario fails, re-raises the first (lowest-index) failure as
/// `"scenario <i> failed: <error>"`.
pub fn run_all(scenarios: &[Scenario]) -> Vec<TrialResult> {
    Engine::global().run_all(scenarios)
}

/// Run with an explicit worker count (tests use specific counts to pin
/// determinism; results are order-stable and bit-identical regardless).
pub fn run_all_with_workers(scenarios: &[Scenario], workers: usize) -> Vec<TrialResult> {
    Engine::global().run_all_jobs(scenarios, workers)
}

/// Convenience: run `trials` seeds of a scenario template and return the
/// per-seed results. `make` receives the seed.
pub fn run_trials<F>(trials: u32, make: F) -> Vec<TrialResult>
where
    F: Fn(u64) -> Scenario,
{
    let scenarios: Vec<Scenario> = (0..trials as u64).map(make).collect();
    run_all(&scenarios)
}

/// Structured failure record for one trial in a fail-soft sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialFailure {
    /// Index of the failing scenario in the sweep's input order.
    pub index: usize,
    /// The error (panic message, budget trip, or audit violation).
    pub error: String,
    /// Human-readable scenario summary for the report.
    pub context: String,
}

/// The fail-soft result of one trial: the measurement, or a structured
/// failure that the rest of the sweep survived.
#[derive(Debug, Clone)]
pub enum TrialOutcome {
    Ok(TrialResult),
    Failed(TrialFailure),
}

impl TrialOutcome {
    /// The result, if the trial succeeded.
    pub fn ok(&self) -> Option<&TrialResult> {
        match self {
            TrialOutcome::Ok(r) => Some(r),
            TrialOutcome::Failed(_) => None,
        }
    }

    /// The failure, if the trial failed.
    pub fn failure(&self) -> Option<&TrialFailure> {
        match self {
            TrialOutcome::Ok(_) => None,
            TrialOutcome::Failed(f) => Some(f),
        }
    }
}

/// Configuration for a fail-soft, resumable sweep ([`run_sweep`]).
#[derive(Debug, Clone, Default)]
pub struct SweepConfig {
    /// Worker threads (`None` = the engine's configured `--jobs`).
    pub jobs: Option<usize>,
    /// Per-scenario event budget (livelock guard; `None` = unlimited).
    pub event_budget: Option<u64>,
    /// Per-scenario wall-clock budget (`None` = unlimited).
    pub wall_budget: Option<std::time::Duration>,
    /// JSONL journal path. Completed trials (successes *and* structured
    /// failures) are appended in scenario-index order as they finish; a
    /// rerun with the same journal reuses entries whose scenario hash
    /// (and, for failures, budgets) still match instead of re-running
    /// them.
    pub journal: Option<PathBuf>,
}

/// Run all scenarios fail-soft: one panicking, livelocked, or invalid
/// scenario becomes a structured [`TrialOutcome::Failed`] while the rest
/// of the sweep completes. Outcomes come back in input order.
///
/// With [`SweepConfig::journal`] set, finished trials are checkpointed as
/// JSONL by a single writer in strict index order (so `--jobs 1` and
/// `--jobs 8` journals are byte-identical); rerunning the same sweep
/// resumes, re-using every journal entry whose scenario hash still
/// matches and re-running only the rest. A journal that cannot be
/// opened (unwritable path) is a typed
/// [`ConfigError::Io`](bbrdom_netsim::ConfigError::Io) — per-trial
/// failures stay fail-soft inside the `Ok` outcome vector.
pub fn run_sweep(
    scenarios: &[Scenario],
    config: &SweepConfig,
) -> Result<Vec<TrialOutcome>, bbrdom_netsim::ConfigError> {
    Engine::global().run_sweep(scenarios, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{journal_line, parse_journal_line, scenario_hash_hex};
    use bbrdom_cca::CcaKind;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn tiny(seed: u64) -> Scenario {
        Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 3.0, seed)
    }

    #[test]
    fn results_are_in_input_order() {
        let scenarios: Vec<Scenario> = (0..6).map(tiny).collect();
        let parallel = run_all_with_workers(&scenarios, 4);
        let serial: Vec<_> = scenarios.iter().map(|s| s.run()).collect();
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.throughput_mbps, s.throughput_mbps);
        }
    }

    #[test]
    fn single_worker_works() {
        let scenarios: Vec<Scenario> = (0..3).map(tiny).collect();
        let results = run_all_with_workers(&scenarios, 1);
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn run_trials_uses_distinct_seeds() {
        let results = run_trials(3, tiny);
        assert_eq!(results.len(), 3);
        assert_ne!(results[0].throughput_mbps, results[1].throughput_mbps);
    }

    #[test]
    fn empty_input_is_fine() {
        let results = run_all(&[]);
        assert!(results.is_empty());
    }

    #[test]
    fn worker_failure_reports_scenario_index_and_message() {
        // Scenario 1 has no flows: the engine surfaces the validation
        // error, tagged with the failing index.
        let mut scenarios: Vec<Scenario> = (0..3).map(tiny).collect();
        scenarios[1].flows.clear();
        let caught = catch_unwind(AssertUnwindSafe(|| run_all_with_workers(&scenarios, 2)))
            .expect_err("sweep with a failing scenario must panic");
        let msg = payload_message(&*caught);
        assert!(
            msg.contains("scenario 1") && msg.contains("no flows"),
            "unhelpful panic message: {msg}"
        );
    }

    #[test]
    fn earliest_failing_scenario_wins() {
        let mut scenarios: Vec<Scenario> = (0..4).map(tiny).collect();
        scenarios[0].flows.clear();
        scenarios[2].flows.clear();
        let caught = catch_unwind(AssertUnwindSafe(|| run_all_with_workers(&scenarios, 4)))
            .expect_err("sweep must panic");
        let msg = payload_message(&*caught);
        assert!(
            msg.contains("scenario 0"),
            "expected scenario 0 first: {msg}"
        );
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbrdom-sweep-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn sweep_survives_a_failing_scenario() {
        // Scenario 1 is invalid (no flows): the sweep must record a
        // structured failure at index 1 and still run the other two.
        let mut scenarios: Vec<Scenario> = (0..3).map(tiny).collect();
        scenarios[1].flows.clear();
        let cfg = SweepConfig {
            jobs: Some(2),
            ..SweepConfig::default()
        };
        let outcomes = run_sweep(&scenarios, &cfg).expect("sweep runs");
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].ok().is_some());
        assert!(outcomes[2].ok().is_some());
        let failure = outcomes[1].failure().expect("scenario 1 must fail");
        assert_eq!(failure.index, 1);
        assert!(
            failure.error.contains("no flows"),
            "unhelpful error: {}",
            failure.error
        );
        assert!(failure.context.contains("0 flows"));
    }

    #[test]
    fn sweep_event_budget_fails_soft() {
        // 1000 events is far too few for a 3-second trial: the budget
        // trips and is reported as a structured failure, not a panic.
        let scenarios: Vec<Scenario> = (0..2).map(tiny).collect();
        let cfg = SweepConfig {
            jobs: Some(2),
            event_budget: Some(1_000),
            ..SweepConfig::default()
        };
        let outcomes = run_sweep(&scenarios, &cfg).expect("sweep runs");
        for o in &outcomes {
            let f = o.failure().expect("budget must trip");
            assert!(
                f.error.contains("event budget"),
                "unhelpful error: {}",
                f.error
            );
        }
    }

    #[test]
    fn sweep_journal_resumes_without_rerunning() {
        let path = temp_path("resume");
        let _ = std::fs::remove_file(&path);
        let scenarios: Vec<Scenario> = (0..3).map(tiny).collect();
        let cfg = SweepConfig {
            jobs: Some(2),
            journal: Some(path.clone()),
            ..SweepConfig::default()
        };
        let first = run_sweep(&scenarios, &cfg).expect("sweep runs");
        assert!(first.iter().all(|o| o.ok().is_some()));

        // Tamper with trial 0's journaled throughput. If the resumed
        // sweep re-ran the scenario it would recompute the honest value;
        // seeing 999 back proves the journal entry was reused verbatim.
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered: String = text
            .lines()
            .map(|line| {
                let entry = parse_journal_line(line).expect("valid journal line");
                if entry.index == 0 {
                    let mut r = entry.outcome.ok().unwrap().clone();
                    r.throughput_mbps[0] = 999.0;
                    let mut out = journal_line(
                        0,
                        &scenario_hash_hex(&scenarios[0]),
                        &TrialOutcome::Ok(r),
                        None,
                        None,
                    );
                    out.push('\n');
                    out
                } else {
                    format!("{line}\n")
                }
            })
            .collect();
        std::fs::write(&path, tampered).unwrap();

        let resumed = run_sweep(&scenarios, &cfg).expect("sweep runs");
        assert_eq!(resumed[0].ok().unwrap().throughput_mbps[0], 999.0);
        // Untampered entries round-trip bit-exactly.
        assert_eq!(
            resumed[1].ok().unwrap().throughput_mbps,
            first[1].ok().unwrap().throughput_mbps
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sweep_journal_ignores_stale_entries() {
        let path = temp_path("stale");
        let _ = std::fs::remove_file(&path);
        let scenarios: Vec<Scenario> = (0..2).map(tiny).collect();
        let cfg = SweepConfig {
            jobs: Some(1),
            journal: Some(path.clone()),
            ..SweepConfig::default()
        };
        let first = run_sweep(&scenarios, &cfg).expect("sweep runs");

        // Change scenario 1 (different seed): its journal entry's hash
        // no longer matches and must be re-run; scenario 0 still resumes
        // from the journal.
        let mut changed = scenarios.clone();
        changed[1] = tiny(77);
        let resumed = run_sweep(&changed, &cfg).expect("sweep runs");
        assert_eq!(
            resumed[0].ok().unwrap().throughput_mbps,
            first[0].ok().unwrap().throughput_mbps
        );
        assert_ne!(
            resumed[1].ok().unwrap().throughput_mbps,
            first[1].ok().unwrap().throughput_mbps
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unopenable_journal_is_a_typed_error() {
        // A journal path whose parent is a plain file can never be
        // created: formerly a panic deep in the engine, now a typed
        // error on run_sweep's Result path.
        let blocker = temp_path("blocker");
        std::fs::write(&blocker, "not a directory").unwrap();
        let scenarios = vec![tiny(1)];
        let cfg = SweepConfig {
            jobs: Some(1),
            journal: Some(blocker.join("sweep.jsonl")),
            ..SweepConfig::default()
        };
        let err = run_sweep(&scenarios, &cfg).expect_err("journal under a plain file must fail");
        match &err {
            bbrdom_netsim::ConfigError::Io { what, path, .. } => {
                assert_eq!(*what, "sweep journal");
                assert!(path.contains("blocker"), "unhelpful path: {path}");
            }
            other => panic!("expected ConfigError::Io, got {other:?}"),
        }
        assert!(err.to_string().contains("sweep journal"), "{err}");
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn resume_survives_truncated_tail_and_malformed_midline() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let scenarios: Vec<Scenario> = (0..3).map(tiny).collect();
        let cfg = SweepConfig {
            jobs: Some(1),
            journal: Some(path.clone()),
            ..SweepConfig::default()
        };
        let first = run_sweep(&scenarios, &cfg).expect("sweep runs");
        assert!(first.iter().all(|o| o.ok().is_some()));

        // Rebuild the journal as a crash might leave it: line 0 valid
        // but tampered (to prove reuse), a malformed mid-file line, and
        // a torn final record with no trailing newline.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let mut r0 = first[0].ok().unwrap().clone();
        r0.throughput_mbps[0] = 999.0;
        let tampered0 = journal_line(
            0,
            &scenario_hash_hex(&scenarios[0]),
            &TrialOutcome::Ok(r0),
            None,
            None,
        );
        let torn = &lines[2][..lines[2].len() / 2];
        std::fs::write(
            &path,
            format!("{tampered0}\n{{malformed mid-file line\n{torn}"),
        )
        .unwrap();

        let resumed = run_sweep(&scenarios, &cfg).expect("sweep resumes");
        assert_eq!(
            resumed[0].ok().unwrap().throughput_mbps[0],
            999.0,
            "intact line 0 must resume without re-running"
        );
        assert_eq!(
            resumed[1].ok().unwrap().throughput_mbps,
            first[1].ok().unwrap().throughput_mbps,
            "malformed line 1 must be re-run"
        );
        assert_eq!(
            resumed[2].ok().unwrap().throughput_mbps,
            first[2].ok().unwrap().throughput_mbps,
            "torn line 2 must be re-run"
        );

        // The torn tail was truncated before appending, so nothing was
        // glued to the fragment: every index parses back exactly once.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.ends_with('\n'),
            "repaired journal ends on a line boundary"
        );
        let reparsed: Vec<usize> = text
            .lines()
            .filter_map(|l| parse_journal_line(l).map(|e| e.index))
            .collect();
        assert_eq!(reparsed, vec![0, 1, 2], "journal after resume:\n{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sweep_journal_skips_corrupt_lines() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{truncated\nnot json at all\n").unwrap();
        let scenarios: Vec<Scenario> = vec![tiny(3)];
        let cfg = SweepConfig {
            jobs: Some(1),
            journal: Some(path.clone()),
            ..SweepConfig::default()
        };
        let outcomes = run_sweep(&scenarios, &cfg).expect("sweep runs");
        assert!(
            outcomes[0].ok().is_some(),
            "corrupt journal must be ignored"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_outcomes_are_journaled_and_resumed() {
        let path = temp_path("failed");
        let _ = std::fs::remove_file(&path);
        let mut scenarios: Vec<Scenario> = (0..2).map(tiny).collect();
        scenarios[0].flows.clear();
        let cfg = SweepConfig {
            jobs: Some(1),
            journal: Some(path.clone()),
            ..SweepConfig::default()
        };
        let first = run_sweep(&scenarios, &cfg).expect("sweep runs");
        let resumed = run_sweep(&scenarios, &cfg).expect("sweep runs");
        assert_eq!(
            resumed[0].failure().expect("still failed"),
            first[0].failure().expect("failed")
        );
        // The journal holds exactly the two first-run lines: the resumed
        // sweep re-ran nothing and appended nothing.
        let lines = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(lines, 2);
        let _ = std::fs::remove_file(&path);
    }
}
