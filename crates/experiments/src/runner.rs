//! Parallel scenario execution.
//!
//! Simulations are CPU-bound and independent, so we fan out over OS
//! threads with crossbeam's scoped threads (per the networking guides:
//! an async runtime buys nothing for compute-bound work). Results come
//! back in input order regardless of completion order.

use crate::scenario::{Scenario, TrialResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Run all scenarios, in parallel, returning results in input order.
pub fn run_all(scenarios: &[Scenario]) -> Vec<TrialResult> {
    run_all_with_workers(scenarios, default_workers())
}

/// Run with an explicit worker count (tests use 2 for determinism of
/// resource use; results are order-stable regardless).
pub fn run_all_with_workers(scenarios: &[Scenario], workers: usize) -> Vec<TrialResult> {
    let workers = workers.max(1).min(scenarios.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<TrialResult>>> =
        scenarios.iter().map(|_| Mutex::new(None)).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= scenarios.len() {
                    break;
                }
                let result = scenarios[i].run();
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    })
    .expect("worker thread panicked");

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("scenario not executed")
        })
        .collect()
}

/// Convenience: run `trials` seeds of a scenario template and return the
/// per-seed results. `make` receives the seed.
pub fn run_trials<F>(trials: u32, make: F) -> Vec<TrialResult>
where
    F: Fn(u64) -> Scenario,
{
    let scenarios: Vec<Scenario> = (0..trials as u64).map(make).collect();
    run_all(&scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbrdom_cca::CcaKind;

    fn tiny(seed: u64) -> Scenario {
        Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 3.0, seed)
    }

    #[test]
    fn results_are_in_input_order() {
        let scenarios: Vec<Scenario> = (0..6).map(tiny).collect();
        let parallel = run_all_with_workers(&scenarios, 4);
        let serial: Vec<_> = scenarios.iter().map(|s| s.run()).collect();
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.throughput_mbps, s.throughput_mbps);
        }
    }

    #[test]
    fn single_worker_works() {
        let scenarios: Vec<Scenario> = (0..3).map(tiny).collect();
        let results = run_all_with_workers(&scenarios, 1);
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn run_trials_uses_distinct_seeds() {
        let results = run_trials(3, tiny);
        assert_eq!(results.len(), 3);
        assert_ne!(results[0].throughput_mbps, results[1].throughput_mbps);
    }

    #[test]
    fn empty_input_is_fine() {
        let results = run_all(&[]);
        assert!(results.is_empty());
    }
}
