//! Parallel scenario execution.
//!
//! Simulations are CPU-bound and independent, so we fan out over OS
//! threads with `std::thread::scope` (per the networking guides: an
//! async runtime buys nothing for compute-bound work). Results come
//! back in input order regardless of completion order.
//!
//! A panic inside one `Scenario::run` does not take down the whole
//! sweep opaquely: the payload is caught on the worker, tagged with the
//! scenario index, and re-raised from the calling thread once all other
//! scenarios have finished — so a 500-point sweep failure names the one
//! point that died.

use crate::scenario::{Scenario, TrialResult};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Render a caught panic payload the way `panic!` would display it.
fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run all scenarios, in parallel, returning results in input order.
///
/// # Panics
///
/// If any scenario panics, re-raises the first (lowest-index) panic as
/// `"scenario <i> panicked: <original message>"`.
pub fn run_all(scenarios: &[Scenario]) -> Vec<TrialResult> {
    run_all_with_workers(scenarios, default_workers())
}

/// Run with an explicit worker count (tests use 2 for determinism of
/// resource use; results are order-stable regardless).
pub fn run_all_with_workers(scenarios: &[Scenario], workers: usize) -> Vec<TrialResult> {
    let workers = workers.max(1).min(scenarios.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<TrialResult>>> =
        scenarios.iter().map(|_| Mutex::new(None)).collect();
    let panics: Mutex<Vec<(usize, Box<dyn Any + Send>)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= scenarios.len() {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| scenarios[i].run())) {
                    Ok(result) => *results[i].lock().expect("result slot poisoned") = Some(result),
                    Err(payload) => panics
                        .lock()
                        .expect("panic log poisoned")
                        .push((i, payload)),
                }
            });
        }
    });

    let mut panics = panics.into_inner().expect("panic log poisoned");
    if !panics.is_empty() {
        panics.sort_by_key(|(i, _)| *i);
        let (index, payload) = panics.swap_remove(0);
        panic!("scenario {index} panicked: {}", payload_message(&*payload));
    }

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("scenario not executed")
        })
        .collect()
}

/// Convenience: run `trials` seeds of a scenario template and return the
/// per-seed results. `make` receives the seed.
pub fn run_trials<F>(trials: u32, make: F) -> Vec<TrialResult>
where
    F: Fn(u64) -> Scenario,
{
    let scenarios: Vec<Scenario> = (0..trials as u64).map(make).collect();
    run_all(&scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbrdom_cca::CcaKind;

    fn tiny(seed: u64) -> Scenario {
        Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 3.0, seed)
    }

    #[test]
    fn results_are_in_input_order() {
        let scenarios: Vec<Scenario> = (0..6).map(tiny).collect();
        let parallel = run_all_with_workers(&scenarios, 4);
        let serial: Vec<_> = scenarios.iter().map(|s| s.run()).collect();
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.throughput_mbps, s.throughput_mbps);
        }
    }

    #[test]
    fn single_worker_works() {
        let scenarios: Vec<Scenario> = (0..3).map(tiny).collect();
        let results = run_all_with_workers(&scenarios, 1);
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn run_trials_uses_distinct_seeds() {
        let results = run_trials(3, tiny);
        assert_eq!(results.len(), 3);
        assert_ne!(results[0].throughput_mbps, results[1].throughput_mbps);
    }

    #[test]
    fn empty_input_is_fine() {
        let results = run_all(&[]);
        assert!(results.is_empty());
    }

    #[test]
    fn worker_panic_reports_scenario_index_and_message() {
        // Scenario 1 has no flows: `run` panics with "scenario needs flows".
        let mut scenarios: Vec<Scenario> = (0..3).map(tiny).collect();
        scenarios[1].flows.clear();
        let caught = catch_unwind(AssertUnwindSafe(|| run_all_with_workers(&scenarios, 2)))
            .expect_err("sweep with a panicking scenario must panic");
        let msg = payload_message(&*caught);
        assert!(
            msg.contains("scenario 1") && msg.contains("needs flows"),
            "unhelpful panic message: {msg}"
        );
    }

    #[test]
    fn earliest_panicking_scenario_wins() {
        let mut scenarios: Vec<Scenario> = (0..4).map(tiny).collect();
        scenarios[0].flows.clear();
        scenarios[2].flows.clear();
        let caught = catch_unwind(AssertUnwindSafe(|| run_all_with_workers(&scenarios, 4)))
            .expect_err("sweep must panic");
        let msg = payload_message(&*caught);
        assert!(
            msg.contains("scenario 0"),
            "expected scenario 0 first: {msg}"
        );
    }
}
