//! `repro` — regenerate the paper's figures from the command line.
//!
//! ```text
//! repro all                 # every figure, quick profile
//! repro fig03 --full        # one figure at paper scale
//! repro 9 --out results/    # figure 9, CSVs into results/
//! repro 9 --jobs 4          # four simulation workers
//! repro 9 --supervise 4     # shard across 4 crash-isolated processes
//! repro 9 --no-cache        # bypass the scenario result cache
//! repro list                # what's available
//!
//! repro query --cca bbr --mbps 10        # query the indexed result store
//! repro index rebuild                    # backfill the index from the cache
//! repro cache stats                      # cache size and index coverage
//! ```

use bbrdom_cca::CcaKind;
use bbrdom_experiments::engine::{jobs_from_env, scenario_hash, Engine, EngineConfig};
use bbrdom_experiments::ext::{run_extension, ALL_EXTENSIONS};
use bbrdom_experiments::figs::{run_figure, ALL_FIGURES};
use bbrdom_experiments::output::Table;
use bbrdom_experiments::store::{Store, StoreOutcome};
use bbrdom_experiments::{BackendSpec, Profile, Scenario, SupervisorConfig, WorkloadSpec};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    targets: Vec<String>,
    profile: Profile,
    out_dir: PathBuf,
    jobs: Option<usize>,
    no_cache: bool,
    no_store: bool,
    cache_dir: Option<PathBuf>,
    supervise: Option<usize>,
    watchdog_secs: Option<f64>,
}

/// Optional per-knob overrides applied on top of the chosen profile.
#[derive(Default)]
struct Overrides {
    ne_flows: Option<u32>,
    duration: Option<f64>,
    trials: Option<u32>,
    buffer_points: Option<usize>,
    loss: Option<f64>,
    ack_loss: Option<f64>,
    adaptive: Option<bool>,
    early_stop: Option<Option<(f64, u32)>>,
    backend: Option<BackendSpec>,
    workload: Option<WorkloadSpec>,
    parkinglot_hops: Option<u32>,
    dumbbell_topology: Option<bool>,
}

/// Default detector knobs for a bare `--early-stop`.
const DEFAULT_EARLY_STOP: (f64, u32) = (0.05, 3);

/// Base RTT of `--workload` flows, ms.
const WORKLOAD_RTT_MS: f64 = 20.0;

/// Parse `--workload CCA:RATE:SIZE` where `RATE` is Poisson arrivals
/// per second and `SIZE` is a fixed transfer size in kB or the word
/// `pareto` (web-like bounded-Pareto sizes).
fn parse_workload(spec: &str) -> Result<WorkloadSpec, String> {
    let err = || {
        format!(
            "--workload {spec} must be CCA:RATE:SIZE \
             (e.g. cubic:80:pareto or bbr:50:30 — SIZE in kB or 'pareto')"
        )
    };
    let mut parts = spec.split(':');
    let (Some(cca), Some(rate), Some(size), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(err());
    };
    let cca: CcaKind = cca.trim().parse().map_err(|_| err())?;
    let rate: f64 = rate.trim().parse().map_err(|_| err())?;
    if !rate.is_finite() || rate <= 0.0 {
        return Err(err());
    }
    if size.trim() == "pareto" {
        Ok(WorkloadSpec::web(cca, rate, WORKLOAD_RTT_MS))
    } else {
        let kb: f64 = size.trim().parse().map_err(|_| err())?;
        if !kb.is_finite() || kb <= 0.0 {
            return Err(err());
        }
        Ok(WorkloadSpec::poisson_fixed(
            cca,
            rate,
            (kb * 1e3) as u64,
            WORKLOAD_RTT_MS,
        ))
    }
}

/// Parse `--early-stop` / `--early-stop=EPS,DWELL`.
fn parse_early_stop(arg: &str) -> Result<(f64, u32), String> {
    let Some(spec) = arg.strip_prefix("--early-stop=") else {
        return Ok(DEFAULT_EARLY_STOP);
    };
    let err = || format!("--early-stop={spec} must be EPS,DWELL (e.g. 0.05,3)");
    let (eps, dwell) = spec.split_once(',').ok_or_else(err)?;
    let eps: f64 = eps.trim().parse().map_err(|_| err())?;
    let dwell: u32 = dwell.trim().parse().map_err(|_| err())?;
    if eps.is_nan() || eps <= 0.0 || dwell == 0 {
        return Err(err());
    }
    Ok((eps, dwell))
}

fn parse_args() -> Result<Args, String> {
    let mut targets = Vec::new();
    let mut profile = Profile::quick();
    let mut out_dir = PathBuf::from("results");
    let mut jobs = None;
    let mut no_cache = false;
    let mut no_store = false;
    let mut cache_dir = None;
    let mut supervise = None;
    let mut watchdog_secs = None;
    let mut overrides = Overrides::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => profile = Profile::full(),
            "--quick" => profile = Profile::quick(),
            "--smoke" => profile = Profile::smoke(),
            "--out" => {
                out_dir = PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--out needs a directory".to_string())?,
                );
            }
            "--jobs" => {
                jobs = Some(
                    args.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| "--jobs needs a positive number".to_string())?,
                );
            }
            "--no-cache" => no_cache = true,
            "--no-store" => no_store = true,
            "--supervise" => {
                supervise = Some(
                    args.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(|| "--supervise needs a positive worker count".to_string())?,
                );
            }
            "--watchdog" => {
                watchdog_secs = Some(
                    args.next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|&s| s.is_finite() && s > 0.0)
                        .ok_or_else(|| {
                            "--watchdog needs a positive number of seconds".to_string()
                        })?,
                );
            }
            "--cache-dir" => {
                cache_dir =
                    Some(PathBuf::from(args.next().ok_or_else(|| {
                        "--cache-dir needs a directory".to_string()
                    })?));
            }
            "--ne-flows" => {
                overrides.ne_flows = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--ne-flows needs a number".to_string())?,
                );
            }
            "--duration" => {
                overrides.duration = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--duration needs seconds".to_string())?,
                );
            }
            "--trials" => {
                overrides.trials = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--trials needs a number".to_string())?,
                );
            }
            "--buffer-points" => {
                overrides.buffer_points = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| "--buffer-points needs a number".to_string())?,
                );
            }
            "--loss" => {
                overrides.loss = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|p| (0.0..=1.0).contains(p))
                        .ok_or_else(|| "--loss needs a probability in [0, 1]".to_string())?,
                );
            }
            "--ack-loss" => {
                overrides.ack_loss = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|p| (0.0..=1.0).contains(p))
                        .ok_or_else(|| "--ack-loss needs a probability in [0, 1]".to_string())?,
                );
            }
            "--adaptive" => overrides.adaptive = Some(true),
            "--backend" => {
                let name = args
                    .next()
                    .ok_or_else(|| "--backend needs 'des' or 'fluid'".to_string())?;
                overrides.backend =
                    Some(BackendSpec::from_name(&name).ok_or_else(|| {
                        format!("--backend must be 'des' or 'fluid', got '{name}'")
                    })?);
            }
            "--dense" => overrides.adaptive = Some(false),
            "--parkinglot-hops" => {
                overrides.parkinglot_hops = Some(
                    args.next()
                        .and_then(|v| v.parse::<u32>().ok())
                        .filter(|&n| n >= 2)
                        .ok_or_else(|| "--parkinglot-hops needs a count >= 2".to_string())?,
                );
            }
            "--dumbbell-as-topology" => overrides.dumbbell_topology = Some(true),
            "--workload" => {
                let spec = args
                    .next()
                    .ok_or_else(|| "--workload needs CCA:RATE:SIZE".to_string())?;
                overrides.workload = Some(parse_workload(&spec)?);
            }
            s if s == "--early-stop" || s.starts_with("--early-stop=") => {
                overrides.early_stop = Some(Some(parse_early_stop(s)?));
            }
            "--no-early-stop" => overrides.early_stop = Some(None),
            "--help" | "-h" => {
                return Err(usage());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag '{other}'\n{}", usage()));
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        return Err(usage());
    }
    if let Some(n) = overrides.ne_flows {
        profile.ne_flows = n;
    }
    if let Some(d) = overrides.duration {
        profile.duration_secs = d;
    }
    if let Some(t) = overrides.trials {
        profile.trials = t;
        profile.ne_trials = t;
    }
    if let Some(b) = overrides.buffer_points {
        profile.buffer_points = b;
    }
    if let Some(p) = overrides.loss {
        profile.loss = p;
    }
    if let Some(p) = overrides.ack_loss {
        profile.ack_loss = p;
    }
    if let Some(a) = overrides.adaptive {
        profile.adaptive = a;
    }
    if let Some(e) = overrides.early_stop {
        profile.early_stop = e;
    }
    if let Some(b) = overrides.backend {
        profile.backend = b;
    }
    if let Some(w) = overrides.workload {
        profile.workload = Some(w);
    }
    if let Some(h) = overrides.parkinglot_hops {
        profile.parkinglot_hops = h;
    }
    if let Some(t) = overrides.dumbbell_topology {
        profile.dumbbell_topology = t;
    }
    if profile.dumbbell_topology {
        if profile.early_stop.is_some() {
            return Err(
                "--dumbbell-as-topology is incompatible with --early-stop: multi-hop \
                 topologies run fixed horizons"
                    .to_string(),
            );
        }
        if profile.backend == BackendSpec::Fluid {
            return Err(
                "--dumbbell-as-topology is incompatible with --backend fluid: the fluid \
                 queue models exactly one implicit bottleneck"
                    .to_string(),
            );
        }
    }
    if profile.workload.is_some() {
        if profile.early_stop.is_some() {
            return Err(
                "--workload is incompatible with --early-stop: goodput never quiesces \
                 under open-loop churn"
                    .to_string(),
            );
        }
        if profile.backend == BackendSpec::Fluid {
            return Err(
                "--workload is incompatible with --backend fluid: churn is outside the \
                 fluid model's envelope"
                    .to_string(),
            );
        }
    }
    if watchdog_secs.is_some() && supervise.is_none() {
        return Err("--watchdog only makes sense with --supervise N".to_string());
    }
    Ok(Args {
        targets,
        profile,
        out_dir,
        jobs,
        no_cache,
        no_store,
        cache_dir,
        supervise,
        watchdog_secs,
    })
}

fn usage() -> String {
    format!(
        "usage: repro <figure>... [--full|--quick|--smoke] [--out DIR]\n\
         \n\
         figures: {}  (or 'all', or bare numbers like '3')\n\
         extensions: {}  (or 'ext' for all of them)\n\
         profiles: --quick (default, minutes), --full (paper scale), --smoke (seconds)\n\
         overrides: --ne-flows N  --duration SECS  --trials N  --buffer-points N\n\
         impairments (ext-faults): --loss P  --ack-loss P  (wire-loss probability, 0-1)\n\
         workload: --workload CCA:RATE:SIZE (open-loop churn on every scenario; RATE in\n\
         \x20          flows/s, SIZE in kB or 'pareto', e.g. cubic:80:pareto)\n\
         topology: --parkinglot-hops N (bottleneck count of the ext-parkinglot chain; >= 2)\n\
         \x20         --dumbbell-as-topology (run payoff cells with the dumbbell spelled as an\n\
         \x20           explicit topology; bit-identical results, distinct cache keys)\n\
         perf: --adaptive (model-guided NE search) / --dense (full grid, default)\n\
         \x20     --backend des|fluid (packet DES, default, or the fluid/ODE fast model)\n\
         \x20     --early-stop[=EPS,DWELL] (stop converged runs early; default 0.05,3)\n\
         \x20     --no-early-stop (fixed horizon, default)\n\
         engine: --jobs N (or BBRDOM_JOBS; default: all cores)\n\
         \x20        --no-cache (always re-simulate)  --cache-dir DIR (default: <out>/cache)\n\
         \x20        --no-store (bypass the indexed result store; full-report cache only)\n\
         \x20        --supervise N (shard sweeps across N crash-isolated worker processes;\n\
         \x20          --jobs then means threads per worker, default cores/N)\n\
         \x20        --watchdog SECS (supervised stall limit before a worker is killed;\n\
         \x20          default scales with the profile: ~30s smoke, 120s quick, 480s full)\n\
         store:  repro query [FILTERS] (search the indexed result store; see repro query -h)\n\
         \x20        repro index rebuild [--cache-dir DIR] (backfill the index from the cache)\n\
         \x20        repro cache stats [--cache-dir DIR] (entry count, bytes, index coverage)\n",
        ALL_FIGURES.join(" "),
        ALL_EXTENSIONS.join(" ")
    )
}

/// Entry point for the hidden `repro worker --dir D --id K` subcommand:
/// the supervised-sweep worker process (see [`bbrdom_experiments::supervisor`]).
fn worker_subcommand() -> ExitCode {
    let mut dir = None;
    let mut id = None;
    let mut args = std::env::args().skip(2);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dir" => dir = args.next().map(PathBuf::from),
            "--id" => id = args.next(),
            other => {
                eprintln!("repro worker: unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let (Some(dir), Some(id)) = (dir, id) else {
        eprintln!("usage: repro worker --dir WORKDIR --id ID  (internal; spawned by --supervise)");
        return ExitCode::from(2);
    };
    ExitCode::from(bbrdom_experiments::supervisor::worker_main(&dir, &id) as u8)
}

/// Default store location when a subcommand gets no `--cache-dir`:
/// matches the figure path's `<out>/cache` with the default `--out`.
fn default_cache_dir() -> PathBuf {
    PathBuf::from("results").join("cache")
}

fn query_usage() -> String {
    "usage: repro query [--cache-dir DIR] [FILTERS] [OUTPUT]\n\
     \n\
     Search the indexed result store (<cache>/index.jsonl) without opening\n\
     a single full report. Filters AND together:\n\
     \x20 --cca MIX        flow mix: 'bbr' (present, any count) or exact 'cubic:4+bbr:2'\n\
     \x20 --mbps X --rtt MS --buffer BDP   bottleneck capacity / base RTT / buffer size\n\
     \x20 --n N            total flow count      --seed N   trial seed\n\
     \x20 --backend des|fluid               simulation backend\n\
     \x20 --workload yes|no --topology yes|no   presence of churn / an explicit topology\n\
     \x20 --ok | --failed  outcome status (default: both)\n\
     output:\n\
     \x20 aligned table (default)  --jsonl (raw index lines)  --count (matches only)\n\
     \x20 --missing FILE   read scenario-JSON lines from FILE ('-' = stdin) and print\n\
     \x20                  the ones the store cannot serve — sweep planning\n"
        .to_string()
}

struct QueryFilter {
    cca: Option<String>,
    mbps: Option<f64>,
    rtt: Option<f64>,
    buffer: Option<f64>,
    n: Option<usize>,
    seed: Option<u64>,
    backend: Option<BackendSpec>,
    workload: Option<bool>,
    topology: Option<bool>,
    ok_only: bool,
    failed_only: bool,
}

impl QueryFilter {
    fn matches(&self, entry: &bbrdom_experiments::StoreEntry) -> bool {
        let s = &entry.scenario;
        let ok = entry.ok().is_some();
        if self.ok_only && !ok {
            return false;
        }
        if self.failed_only && ok {
            return false;
        }
        if let Some(mix) = &self.cca {
            if !entry.mix_matches(mix) {
                return false;
            }
        }
        self.mbps.is_none_or(|v| s.mbps == v)
            && self.rtt.is_none_or(|v| s.reference_rtt_ms == v)
            && self.buffer.is_none_or(|v| s.buffer_bdp == v)
            && self.n.is_none_or(|v| s.flows.len() == v)
            && self.seed.is_none_or(|v| s.seed == v)
            && self.backend.is_none_or(|v| s.backend == v)
            && self.workload.is_none_or(|v| s.workload.is_some() == v)
            && self.topology.is_none_or(|v| s.topology.is_some() == v)
    }
}

fn parse_yes_no(flag: &str, v: Option<String>) -> Result<bool, String> {
    match v.as_deref() {
        Some("yes") => Ok(true),
        Some("no") => Ok(false),
        _ => Err(format!("{flag} needs 'yes' or 'no'")),
    }
}

/// `repro query ...` — answer filters from the index alone.
fn query_subcommand() -> ExitCode {
    let mut cache_dir = default_cache_dir();
    let mut filter = QueryFilter {
        cca: None,
        mbps: None,
        rtt: None,
        buffer: None,
        n: None,
        seed: None,
        backend: None,
        workload: None,
        topology: None,
        ok_only: false,
        failed_only: false,
    };
    let mut jsonl = false;
    let mut count = false;
    let mut missing: Option<String> = None;
    let mut args = std::env::args().skip(2);
    let fail = |msg: String| -> ExitCode {
        eprintln!("{msg}\n{}", query_usage());
        ExitCode::from(2)
    };
    while let Some(a) = args.next() {
        let num = |flag: &str, v: Option<String>| -> Result<f64, String> {
            v.and_then(|v| v.parse::<f64>().ok())
                .filter(|v| v.is_finite())
                .ok_or_else(|| format!("{flag} needs a number"))
        };
        match a.as_str() {
            "--cache-dir" => match args.next() {
                Some(d) => cache_dir = PathBuf::from(d),
                None => return fail("--cache-dir needs a directory".into()),
            },
            "--cca" => match args.next() {
                Some(m) => filter.cca = Some(m),
                None => return fail("--cca needs a mix like 'bbr' or 'cubic:4+bbr:2'".into()),
            },
            "--mbps" => match num("--mbps", args.next()) {
                Ok(v) => filter.mbps = Some(v),
                Err(e) => return fail(e),
            },
            "--rtt" => match num("--rtt", args.next()) {
                Ok(v) => filter.rtt = Some(v),
                Err(e) => return fail(e),
            },
            "--buffer" => match num("--buffer", args.next()) {
                Ok(v) => filter.buffer = Some(v),
                Err(e) => return fail(e),
            },
            "--n" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) => filter.n = Some(v),
                None => return fail("--n needs a flow count".into()),
            },
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => filter.seed = Some(v),
                None => return fail("--seed needs a number".into()),
            },
            "--backend" => match args.next().as_deref().and_then(BackendSpec::from_name) {
                Some(b) => filter.backend = Some(b),
                None => return fail("--backend needs 'des' or 'fluid'".into()),
            },
            "--workload" => match parse_yes_no("--workload", args.next()) {
                Ok(v) => filter.workload = Some(v),
                Err(e) => return fail(e),
            },
            "--topology" => match parse_yes_no("--topology", args.next()) {
                Ok(v) => filter.topology = Some(v),
                Err(e) => return fail(e),
            },
            "--ok" => filter.ok_only = true,
            "--failed" => filter.failed_only = true,
            "--jsonl" => jsonl = true,
            "--count" => count = true,
            "--missing" => match args.next() {
                Some(p) => missing = Some(p),
                None => {
                    return fail(
                        "--missing needs a file of scenario-JSON lines ('-' = stdin)".into(),
                    )
                }
            },
            "--help" | "-h" => {
                print!("{}", query_usage());
                return ExitCode::SUCCESS;
            }
            other => return fail(format!("unknown query argument '{other}'")),
        }
    }
    if filter.ok_only && filter.failed_only {
        return fail("--ok and --failed are mutually exclusive".into());
    }
    let store = Store::open(&cache_dir);

    // Sweep planning: which of the given scenarios can the store NOT
    // serve? Prints the unservable lines (or their count) so a caller
    // can pipe them straight into a sweep.
    if let Some(src) = missing {
        let text = if src == "-" {
            use std::io::Read as _;
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("repro query: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        } else {
            match std::fs::read_to_string(&src) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("repro query: cannot read {src}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        };
        let mut missing_count = 0usize;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let scenario = bbrdom_netsim::json::parse(line)
                .ok()
                .and_then(|v| Scenario::from_json_value(&v).ok());
            let Some(scenario) = scenario else {
                eprintln!(
                    "repro query: --missing line {} is not a scenario",
                    lineno + 1
                );
                return ExitCode::from(2);
            };
            let served = store
                .get(scenario_hash(&scenario))
                .is_some_and(|e| e.ok().is_some());
            if !served {
                missing_count += 1;
                if !count {
                    println!("{line}");
                }
            }
        }
        if count {
            println!("{missing_count}");
        }
        return ExitCode::SUCCESS;
    }

    let matches: Vec<_> = store
        .entries()
        .into_iter()
        .filter(|e| filter.matches(e))
        .collect();
    if count {
        println!("{}", matches.len());
        return ExitCode::SUCCESS;
    }
    if jsonl {
        for e in &matches {
            println!("{}", e.to_json_line());
        }
        return ExitCode::SUCCESS;
    }
    let mut table = Table::new(
        format!("store query — {} of {} entries", matches.len(), store.len()),
        &[
            "key",
            "mix",
            "mbps",
            "rtt_ms",
            "buf_bdp",
            "n",
            "seed",
            "backend",
            "status",
            "events",
            "util",
            "goodput_mbps",
        ],
    );
    for e in &matches {
        let s = &e.scenario;
        let (status, events, util, goodput) = match &e.outcome {
            StoreOutcome::Ok { events, result } => (
                "ok".to_string(),
                events.map_or_else(|| "-".to_string(), |v| v.to_string()),
                format!("{:.3}", result.utilization),
                e.goodput_by_cca()
                    .iter()
                    .map(|(cca, g)| format!("{cca}={g:.2}"))
                    .collect::<Vec<_>>()
                    .join(" "),
            ),
            StoreOutcome::Failed { error, .. } => (
                format!("failed: {}", error.chars().take(24).collect::<String>()),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ),
        };
        table.push_row(vec![
            e.key[..12].to_string(),
            e.mix(),
            format!("{}", s.mbps),
            format!("{}", s.reference_rtt_ms),
            format!("{}", s.buffer_bdp),
            s.flows.len().to_string(),
            s.seed.to_string(),
            s.backend.name().to_string(),
            status,
            events,
            util,
            goodput,
        ]);
    }
    print!("{}", table.render());
    ExitCode::SUCCESS
}

/// `repro index rebuild [--cache-dir DIR]` — backfill the index by
/// scanning every cache entry (tolerant of corrupt/pre-store entries).
fn index_subcommand() -> ExitCode {
    let mut cache_dir = default_cache_dir();
    let mut args = std::env::args().skip(2);
    let usage = "usage: repro index rebuild [--cache-dir DIR]";
    match args.next().as_deref() {
        Some("rebuild") => {}
        _ => {
            eprintln!("{usage}");
            return ExitCode::from(2);
        }
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cache-dir" => match args.next() {
                Some(d) => cache_dir = PathBuf::from(d),
                None => {
                    eprintln!("--cache-dir needs a directory\n{usage}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument '{other}'\n{usage}");
                return ExitCode::from(2);
            }
        }
    }
    match Store::rebuild(&cache_dir) {
        Ok((store, stats)) => {
            println!(
                "rebuilt {}: {} entries indexed from {} cache files ({} corrupt skipped, {} without scenario params)",
                cache_dir.join("index.jsonl").display(),
                store.len(),
                stats.scanned,
                stats.corrupt,
                stats.no_scenario,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!(
                "repro index rebuild: cannot scan {}: {e}",
                cache_dir.display()
            );
            ExitCode::FAILURE
        }
    }
}

/// `repro cache stats [--cache-dir DIR]` — entry count, bytes, coverage.
fn cache_subcommand() -> ExitCode {
    let mut cache_dir = default_cache_dir();
    let mut args = std::env::args().skip(2);
    let usage = "usage: repro cache stats [--cache-dir DIR]";
    match args.next().as_deref() {
        Some("stats") => {}
        _ => {
            eprintln!("{usage}");
            return ExitCode::from(2);
        }
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cache-dir" => match args.next() {
                Some(d) => cache_dir = PathBuf::from(d),
                None => {
                    eprintln!("--cache-dir needs a directory\n{usage}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument '{other}'\n{usage}");
                return ExitCode::from(2);
            }
        }
    }
    match Store::cache_stats(&cache_dir) {
        Ok((_, s)) => {
            let covered_pct = if s.disk_entries == 0 {
                0.0
            } else {
                100.0 * s.covered as f64 / s.disk_entries as f64
            };
            println!("cache {}", cache_dir.display());
            println!(
                "  disk entries : {} ({} bytes)",
                s.disk_entries, s.disk_bytes
            );
            println!(
                "  index        : {} ok + {} failed ({} bytes)",
                s.index_ok, s.index_failed, s.index_bytes
            );
            println!(
                "  coverage     : {}/{} disk entries indexed ({covered_pct:.0}%)",
                s.covered, s.disk_entries
            );
            if s.orphans_swept > 0 {
                println!("  orphan tmps  : {} swept on open", s.orphans_swept);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!(
                "repro cache stats: cannot scan {}: {e}",
                cache_dir.display()
            );
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    match std::env::args().nth(1).as_deref() {
        Some("worker") => return worker_subcommand(),
        Some("query") => return query_subcommand(),
        Some("index") => return index_subcommand(),
        Some("cache") => return cache_subcommand(),
        _ => {}
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.targets.iter().any(|t| t == "list") {
        println!("{}", ALL_FIGURES.join("\n"));
        return ExitCode::SUCCESS;
    }
    // Ctrl-C / SIGTERM flush the sweep journal and print a resume hint
    // instead of tearing the process down mid-write.
    bbrdom_experiments::supervisor::install_signal_handlers();
    // Configure the scenario engine before anything simulates (the
    // global engine is first-use-wins). Disk cache defaults to
    // <out>/cache so warm reruns of the same figure skip the work.
    let disk_cache = if args.no_cache {
        None
    } else {
        Some(
            args.cache_dir
                .clone()
                .unwrap_or_else(|| args.out_dir.join("cache")),
        )
    };
    let supervise = args.supervise.map(|workers| {
        // Supervisor scratch state (work dirs, auto-journals) lives next
        // to the cache; with --no-cache it falls back to a temp dir.
        let state_dir = disk_cache
            .as_ref()
            .map(|c| c.join("supervise"))
            .unwrap_or_else(|| {
                std::env::temp_dir().join(format!("bbrdom-supervise-{}", std::process::id()))
            });
        let mut sup = SupervisorConfig::new(workers, state_dir);
        // The watchdog default scales with the profile: a --full trial
        // legitimately runs minutes of wall-clock, a --smoke one doesn't.
        sup.watchdog = args
            .watchdog_secs
            .map(Duration::from_secs_f64)
            .unwrap_or_else(|| args.profile.supervise_watchdog());
        sup
    });
    // With --supervise, --jobs means threads *per worker*; the default
    // splits the machine's cores across the worker processes.
    let jobs = args.jobs.or_else(jobs_from_env).unwrap_or_else(|| {
        let cores = bbrdom_experiments::runner::default_workers();
        match args.supervise {
            Some(n) => (cores / n.max(1)).max(1),
            None => cores,
        }
    });
    let engine_config = EngineConfig {
        jobs,
        disk_cache,
        memory_cache: !args.no_cache,
        supervise,
        result_store: !args.no_cache && !args.no_store,
    };
    Engine::configure(engine_config);
    match args.supervise {
        Some(n) => eprintln!(
            "engine: {n} supervised workers x {} jobs",
            Engine::global().jobs()
        ),
        None => eprintln!("engine: {} jobs", Engine::global().jobs()),
    }
    let mut targets: Vec<String> = Vec::new();
    for t in &args.targets {
        match t.as_str() {
            "all" => {
                targets.extend(ALL_FIGURES.iter().map(|s| s.to_string()));
            }
            "ext" => {
                targets.extend(ALL_EXTENSIONS.iter().map(|s| s.to_string()));
            }
            other => targets.push(other.to_string()),
        }
    }
    // Fail-soft across targets: a figure that panics is reported and the
    // remaining figures still run; the exit code records the damage.
    let mut failed: Vec<(String, String)> = Vec::new();
    for target in &targets {
        if bbrdom_experiments::supervisor::interrupted() {
            eprintln!("interrupted — skipping remaining targets");
            return ExitCode::from(130);
        }
        eprintln!("== running {target} ==");
        let started = std::time::Instant::now();
        let stats_before = Engine::global().stats();
        let ran = std::panic::catch_unwind(|| {
            run_figure(target, &args.profile).or_else(|| run_extension(target, &args.profile))
        });
        match ran {
            Ok(Some(result)) => {
                print!("{}", result.render());
                match result.write_csvs(&args.out_dir) {
                    Ok(paths) => {
                        for p in paths {
                            eprintln!("wrote {}", p.display());
                        }
                    }
                    Err(e) => {
                        eprintln!("error writing CSVs for {target}: {e}");
                        failed.push((target.clone(), format!("CSV write failed: {e}")));
                        continue;
                    }
                }
                let spent = Engine::global().stats().since(&stats_before);
                eprintln!(
                    "== {target} done in {:.1}s ({}) ==",
                    started.elapsed().as_secs_f64(),
                    spent.summary()
                );
            }
            Ok(None) => {
                eprintln!("unknown figure '{target}'\n{}", usage());
                return ExitCode::from(2);
            }
            Err(payload) => {
                let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "<non-string panic payload>".to_string()
                };
                eprintln!("== {target} FAILED: {msg} ==");
                failed.push((target.clone(), msg));
            }
        }
    }
    if !failed.is_empty() {
        eprintln!("\n{} of {} targets failed:", failed.len(), targets.len());
        for (target, msg) in &failed {
            eprintln!("  {target}: {msg}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
