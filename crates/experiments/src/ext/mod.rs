//! Extension experiments beyond the paper's figures — each one explores
//! a question the paper raises but leaves open:
//!
//! | Module | Paper hook | Question |
//! |---|---|---|
//! | [`aqm`] | §1/§5 (AQMs, buffer sizing) | Does the CUBIC/BBR split — and the Nash mix — survive RED and CoDel bottlenecks? |
//! | [`ternary`] | §4.2 (future work: >2 CCAs) | Where does a three-strategy CUBIC/BBR/BBRv2 game settle? |
//! | [`shortflows`] | §5 (future work: diverse workloads) | How do short-flow completion times change as the long-flow mix shifts from CUBIC to BBR? |
//! | [`utility`] | §4.3 (complex utility functions) | Do Nash equilibria persist under `u = throughput − w·delay`? |
//! | [`faults`] | §5 (real-path diversity) | Does the split — and the Nash mix — survive wire loss, outages, and delay spikes? |
//! | [`churn`] | §5 (future work: diverse workloads) | Does the split — and the Nash mix — survive open-loop flow churn, and what FCT tail does the churn see? |
//! | [`parkinglot`] | §5 (real-path diversity) | Does the game survive a multi-bottleneck parking-lot chain with per-hop cross traffic? |
//!
//! All are runnable through the `repro` binary: `repro ext-aqm`,
//! `repro ext-ternary`, `repro ext-shortflows`, `repro ext-utility`,
//! `repro ext-faults`, `repro ext-churn`, `repro ext-parkinglot`.

pub mod aqm;
pub mod churn;
pub mod faults;
pub mod parkinglot;
pub mod shortflows;
pub mod ternary;
pub mod utility;

use crate::figs::FigResult;
use crate::profile::Profile;

/// All extension experiment ids.
pub const ALL_EXTENSIONS: [&str; 7] = [
    "ext-aqm",
    "ext-ternary",
    "ext-shortflows",
    "ext-utility",
    "ext-faults",
    "ext-churn",
    "ext-parkinglot",
];

/// Run an extension experiment by id.
pub fn run_extension(id: &str, profile: &Profile) -> Option<FigResult> {
    match id {
        "ext-aqm" => Some(aqm::run(profile)),
        "ext-ternary" => Some(ternary::run(profile)),
        "ext-shortflows" => Some(shortflows::run(profile)),
        "ext-utility" => Some(utility::run(profile)),
        "ext-faults" => Some(faults::run(profile)),
        "ext-churn" => Some(churn::run(profile)),
        "ext-parkinglot" => Some(parkinglot::run(profile)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_extension_is_none() {
        assert!(run_extension("ext-nope", &Profile::smoke()).is_none());
    }
}
