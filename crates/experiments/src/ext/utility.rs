//! ext-utility — Nash equilibria under throughput–delay utilities
//! (the paper's §4.3).
//!
//! The paper conjectures that for utilities of the form
//! `u = throughput − w·delay`, equilibria still exist and sit where the
//! throughput analysis puts them, because queuing delay is *shared* by
//! every flow at the bottleneck (Fig. 8b) while throughput is the
//! asymmetric, switch-driving metric. We test that directly: reuse the
//! measured Fig.-8 curves (throughput per algorithm + shared delay per
//! split), build the utility game for a sweep of delay weights `w`, and
//! report the equilibrium set per `w`.
//!
//! Expected (and observed): the NE set is essentially `w`-invariant
//! until `w` becomes large enough that the *all-BBR* state's much lower
//! delay dominates — at which point the game tips to all-BBR, which is
//! still an equilibrium structure, just a corner one. Either way, a
//! pure NE exists for every `w` (guaranteed for two-strategy symmetric
//! games; see `game::symmetric`).

use super::FigResult;
use crate::output::Table;
use crate::payoff::measure_payoffs;
use crate::profile::Profile;
use bbrdom_cca::CcaKind;
use bbrdom_core::game::symmetric::SymmetricGame;

pub const MBPS: f64 = 100.0;
pub const RTT_MS: f64 = 40.0;
pub const BUFFER_BDP: f64 = 2.0;
/// Delay weights, in Mbps per second of queuing delay.
pub const WEIGHTS: [f64; 5] = [0.0, 50.0, 200.0, 1000.0, 5000.0];

pub fn run(profile: &Profile) -> FigResult {
    let n = (profile.ne_flows / 2).clamp(4, 10);
    let mut p = *profile;
    p.ne_trials = profile.trials;
    let curves =
        measure_payoffs(MBPS, RTT_MS, BUFFER_BDP, n, CcaKind::Bbr, &p, 0xE4_0000).mean_curves();

    let mut table = Table::new(
        format!(
            "ext-utility: NE of u = throughput − w·delay ({n} flows, {MBPS} Mbps, {BUFFER_BDP} BDP)"
        ),
        &["w_mbps_per_sec_delay", "ne_n_cubic_states"],
    );
    let mut always_exists = true;
    let mut ne_sets = Vec::new();
    for &w in &WEIGHTS {
        // Utility per state: Mbps − w · (shared queuing delay in s).
        let bbr_u: Vec<f64> = (0..=n as usize)
            .map(|k| curves.x_per_flow[k] - w * curves.queuing_delay_ms[k] / 1e3)
            .collect();
        let cubic_u: Vec<f64> = (0..=n as usize)
            .map(|k| curves.cubic_per_flow[k] - w * curves.queuing_delay_ms[k] / 1e3)
            .collect();
        let eps = 0.02 * MBPS / n as f64;
        let game = SymmetricGame::new(n, bbr_u, cubic_u).with_epsilon(eps);
        let nes: Vec<u32> = game.nash_equilibria().iter().map(|e| e.n_cubic).collect();
        always_exists &= !nes.is_empty();
        ne_sets.push(nes.clone());
        table.push_row(vec![
            format!("{w}"),
            nes.iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(";"),
        ]);
    }
    let stable_until_heavy = ne_sets
        .windows(2)
        .take(2) // compare the small-w regimes
        .all(|w2| w2[0] == w2[1]);
    FigResult {
        id: "ext-utility",
        tables: vec![table],
        notes: vec![
            format!(
                "a pure NE exists at every delay weight: {}",
                if always_exists { "YES" } else { "NO" }
            ),
            format!(
                "NE set unchanged across small delay weights (throughput dominates, §4.3): {}",
                if stable_until_heavy { "YES" } else { "NO" }
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_has_row_per_weight() {
        let r = run(&Profile::smoke());
        assert_eq!(r.tables[0].rows.len(), WEIGHTS.len());
        assert!(!r.notes.is_empty());
    }
}
