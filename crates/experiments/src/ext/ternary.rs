//! ext-ternary — three congestion-control algorithms at one bottleneck
//! (the paper's §4.2 future work).
//!
//! Strategies: CUBIC, BBR, BBRv2. We measure the per-flow payoff of
//! every *composition* `(k_cubic, k_bbr, k_bbrv2)` of `n` flows —
//! `C(n+2, 2)` simulator runs — and enumerate the pure Nash equilibria
//! of the resulting symmetric three-strategy game, plus a best-response
//! trajectory from the all-CUBIC Internet.
//!
//! Outcome to look for: whether the two-strategy result generalizes —
//! i.e. the game still settles on *mixed* deployments (no algorithm
//! sweeps the board), with BBRv2 displacing some of both.

use super::FigResult;
use crate::output::Table;
use crate::profile::Profile;
use crate::runner;
use crate::scenario::{BackendSpec, DisciplineSpec, FaultSpec, FlowSpec, Scenario};
use bbrdom_cca::CcaKind;
use bbrdom_core::game::multistrategy::MultiStrategyGame;
use std::collections::HashMap;

pub const MBPS: f64 = 60.0;
pub const RTT_MS: f64 = 40.0;
pub const BUFFER_BDP: f64 = 4.0;
pub const STRATEGIES: [CcaKind; 3] = [CcaKind::Cubic, CcaKind::Bbr, CcaKind::BbrV2];

fn scenario_for(state: &[u32], duration: f64, seed: u64) -> Scenario {
    let mut flows = Vec::new();
    for (i, &k) in state.iter().enumerate() {
        for _ in 0..k {
            flows.push(FlowSpec::long(STRATEGIES[i], RTT_MS));
        }
    }
    Scenario {
        mbps: MBPS,
        buffer_bdp: BUFFER_BDP,
        reference_rtt_ms: RTT_MS,
        flows,
        duration_secs: duration,
        seed,
        discipline: DisciplineSpec::DropTail,
        faults: FaultSpec::default(),
        early_stop: None,
        backend: BackendSpec::Des,
        workload: None,
        topology: None,
    }
}

/// Boxed payoff oracle: composition state -> per-strategy payoffs.
pub type PayoffOracle = Box<dyn Fn(&[u32]) -> Vec<f64>>;

/// A measured game plus the composition states backing its payoff oracle.
pub type MeasuredGame = (MultiStrategyGame<PayoffOracle>, Vec<Vec<u32>>);

/// Measure all compositions and build the payoff oracle.
pub fn measure_game(n: u32, profile: &Profile) -> MeasuredGame {
    // Enumerate compositions via a scratch game (payoffs unused).
    let scratch = MultiStrategyGame::new(n, 3, |_: &[u32]| vec![0.0; 3]);
    let states = scratch.states();
    let mut scenarios: Vec<Scenario> = states
        .iter()
        .enumerate()
        .map(|(i, st)| scenario_for(st, profile.duration_secs, 0xE3_0000 + i as u64 * 89))
        .collect();
    profile.apply_workload(&mut scenarios);
    let results = runner::run_all(&scenarios);
    let mut payoffs: HashMap<Vec<u32>, Vec<f64>> = HashMap::new();
    for (state, result) in states.iter().zip(&results) {
        let per_strategy: Vec<f64> = STRATEGIES
            .iter()
            .map(|s| result.mean_throughput_of(s.name()).unwrap_or(0.0))
            .collect();
        payoffs.insert(state.clone(), per_strategy);
    }
    let eps = 0.03 * MBPS / n as f64;
    let oracle: PayoffOracle =
        Box::new(move |st: &[u32]| payoffs.get(st).cloned().expect("state measured"));
    let game = MultiStrategyGame::new(n, 3, oracle).with_epsilon(eps);
    (game, states)
}

pub fn run(profile: &Profile) -> FigResult {
    let n = (profile.ne_flows / 2).clamp(4, 12);
    let (game, states) = measure_game(n, profile);

    let mut table = Table::new(
        format!(
            "ext-ternary: pure NE of the CUBIC/BBR/BBRv2 game \
             ({n} flows, {MBPS} Mbps, {BUFFER_BDP} BDP) over {} states",
            states.len()
        ),
        &["k_cubic", "k_bbr", "k_bbrv2"],
    );
    let nes = game.nash_equilibria();
    for ne in &nes {
        table.push_row(vec![
            ne[0].to_string(),
            ne[1].to_string(),
            ne[2].to_string(),
        ]);
    }

    // Best-response path from the all-CUBIC Internet.
    let mut path = vec![vec![n, 0, 0]];
    let mut state = vec![n, 0, 0];
    for _ in 0..(states.len() * 2) {
        match game.best_response_step(&state) {
            Some(next) => {
                state = next;
                path.push(state.clone());
            }
            None => break,
        }
    }
    let settled = game.is_nash(&state);
    let path_str = path
        .iter()
        .map(|s| format!("({},{},{})", s[0], s[1], s[2]))
        .collect::<Vec<_>>()
        .join(" → ");

    let mixed = nes.iter().filter(|ne| ne.iter().all(|&k| k > 0)).count();
    FigResult {
        id: "ext-ternary",
        tables: vec![table],
        notes: vec![
            format!("pure NE count: {} ({} fully mixed)", nes.len(), mixed),
            format!(
                "best-response path from all-CUBIC ({}settled): {}",
                if settled { "" } else { "NOT " },
                path_str
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_game_measures_all_compositions() {
        let mut p = Profile::smoke();
        p.duration_secs = 5.0;
        let (game, states) = measure_game(4, &p);
        assert_eq!(states.len(), 15); // C(6,2)
                                      // Every state's oracle answers without panicking.
        for st in &states {
            let _ = game.is_nash(st);
        }
    }
}
