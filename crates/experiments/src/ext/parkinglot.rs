//! ext-parkinglot — the CUBIC/BBR game over a multi-bottleneck chain.
//!
//! Every experiment in the paper shares a single dumbbell bottleneck:
//! all flows contend at one queue. Real Internet paths traverse several
//! potentially-congested hops, each shared with *different* cross
//! traffic — the classic parking-lot topology of the fairness
//! literature. This experiment re-measures the game there: `n` long
//! flows traverse a chain of equal bottlenecks end to end
//! ([`TopologySpec::parking_lot`]), while every hop also carries CUBIC
//! cross flows that enter and leave at that hop alone.
//!
//! 1. the long flows' payoff curves as the BBR share rises, over the
//!    chain (cross traffic shapes the network but is excluded from the
//!    game's payoffs — [`crate::payoff::measure_payoffs_from`]), and
//! 2. the observed Nash mix on the legacy dumbbell vs the chain.
//!
//! Expected outcome (and what we observe): the chain squeezes the long
//! flows — they pay the parking-lot penalty of contending at every hop
//! while each cross flow contends at one — and it squeezes CUBIC
//! hardest, because the loss-based response compounds across hops. The
//! game keeps a pure equilibrium, but the observed mix shifts sharply
//! toward the all-BBR corner relative to the dumbbell: multiple shared
//! bottlenecks *accelerate* the paper's drift toward BBR dominance.

use super::FigResult;
use crate::output::Table;
use crate::payoff::{default_epsilon_mbps, measure_payoffs, measure_payoffs_from};
use crate::profile::Profile;
use crate::scenario::{FlowSpec, Scenario, TopologySpec};
use bbrdom_cca::CcaKind;
use bbrdom_netsim::hash::{StableHash, StableHasher};

/// Per-hop bottleneck rate, Mbps.
pub const MBPS: f64 = 20.0;
/// End-to-end base RTT of the long flows, ms.
pub const RTT_MS: f64 = 40.0;
pub const BUFFER_BDP: f64 = 2.0;
/// Extra one-way propagation delay per hop, ms.
pub const PER_HOP_DELAY_MS: f64 = 2.0;
/// CUBIC cross flows entering and leaving at each hop.
pub const CROSS_PER_HOP: u32 = 1;
/// Base RTT of the cross-traffic flows' single-hop paths, ms.
pub const CROSS_RTT_MS: f64 = 20.0;
/// Base seed of the dumbbell-reference NE search.
pub const DUMBBELL_SEED: u64 = 0xD7_0000;

/// Trial seed for chain cell `(k, t)`, derived through the FNV stable
/// hash so no two cells can collide (same scheme as `ext-churn`).
pub fn trial_seed(k: u32, t: u32) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(b"ext-parkinglot");
    (k as u64).stable_hash(&mut h);
    (t as u64).stable_hash(&mut h);
    h.finish() as u64
}

/// The scenario for one payoff cell: `n − k` CUBIC and `k` BBR long
/// flows over the full `hops`-bottleneck chain (the
/// [`Scenario::versus`] order the payoff assembly expects), plus
/// [`CROSS_PER_HOP`] CUBIC cross flows pinned to each single-hop route.
pub fn chain_scenario(hops: u32, n: u32, k: u32, duration_secs: f64, seed: u64) -> Scenario {
    let mut topo = TopologySpec::parking_lot(hops, MBPS, PER_HOP_DELAY_MS, BUFFER_BDP);
    let mut flow_routes: Vec<usize> = vec![0; n as usize];
    let mut s = Scenario::versus(
        MBPS,
        RTT_MS,
        BUFFER_BDP,
        n - k,
        CcaKind::Bbr,
        k,
        duration_secs,
        seed,
    );
    for h in 0..hops as usize {
        for _ in 0..CROSS_PER_HOP {
            s.flows.push(FlowSpec::long(CcaKind::Cubic, CROSS_RTT_MS));
            flow_routes.push(1 + h);
        }
    }
    topo.flow_routes = flow_routes;
    s.with_topology(Some(topo))
}

pub fn run(profile: &Profile) -> FigResult {
    let hops = profile.parkinglot_hops.max(2);
    let n = (profile.ne_flows / 2).max(4);
    let trials = profile.ne_trials.max(1);

    // Part 1: the long flows' payoff curves over the chain.
    let chain = measure_payoffs_from(n, CcaKind::Bbr, trials, |k, t| {
        chain_scenario(hops, n, k, profile.duration_secs, trial_seed(k, t))
    });
    let mean = chain.mean_curves();
    let mut curves = Table::new(
        format!(
            "ext-parkinglot: long-flow payoffs over a {hops}-hop chain \
             ({MBPS} Mbps/hop, {PER_HOP_DELAY_MS} ms/hop, {CROSS_PER_HOP} CUBIC \
             cross flow(s) per hop, {BUFFER_BDP} BDP)"
        ),
        &[
            "k_bbr",
            "bbr_per_flow_mbps",
            "cubic_per_flow_mbps",
            "queuing_delay_ms",
        ],
    );
    for k in 0..=n as usize {
        curves.push_row(vec![
            k.to_string(),
            format!("{:.3}", mean.x_per_flow[k]),
            format!("{:.3}", mean.cubic_per_flow[k]),
            format!("{:.2}", mean.queuing_delay_ms[k]),
        ]);
    }

    // Part 2: the observed NE mix, dumbbell vs parking lot.
    let eps = default_epsilon_mbps(MBPS, n);
    let dumbbell = measure_payoffs(
        MBPS,
        RTT_MS,
        BUFFER_BDP,
        n,
        CcaKind::Bbr,
        profile,
        DUMBBELL_SEED,
    );
    let fmt_ne = |ne: &[u32]| {
        ne.iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(";")
    };
    let dumbbell_ne = dumbbell.observed_ne_cubic_counts(eps);
    let chain_ne = chain.observed_ne_cubic_counts(eps);
    let mut ne_table = Table::new(
        format!("ext-parkinglot: observed NE (#CUBIC of {n} long flows) at {BUFFER_BDP} BDP"),
        &["topology", "observed_ne_cubic"],
    );
    ne_table.push_row(vec!["dumbbell".to_string(), fmt_ne(&dumbbell_ne)]);
    ne_table.push_row(vec![
        format!("parking-lot ({hops} hops)"),
        fmt_ne(&chain_ne),
    ]);

    let mut notes = Vec::new();
    let all_bbr = mean.x_per_flow[n as usize];
    let all_cubic = mean.cubic_per_flow[0];
    notes.push(format!(
        "over the {hops}-hop chain a long flow gets {all_cubic:.2} Mbps in the all-CUBIC \
         state and {all_bbr:.2} Mbps in the all-BBR state (fair share against the per-hop \
         cross flow would be {:.2} Mbps) — the parking-lot penalty of contending at every hop",
        MBPS / (n + CROSS_PER_HOP) as f64
    ));
    notes.push(format!(
        "observed NE mix moves from [{}] CUBIC on the dumbbell to [{}] on the chain — \
         per-hop cross traffic taxes the loss-based strategy at every bottleneck, so a \
         pure equilibrium persists but shifts toward the all-BBR corner",
        fmt_ne(&dumbbell_ne),
        fmt_ne(&chain_ne)
    ));
    FigResult {
        id: "ext-parkinglot",
        tables: vec![curves, ne_table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_unique_over_the_grid() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..12 {
            for t in 0..10 {
                assert!(seen.insert(trial_seed(k, t)));
            }
        }
    }

    #[test]
    fn chain_scenario_validates_and_runs() {
        let s = chain_scenario(2, 2, 1, 4.0, trial_seed(1, 0));
        s.validate().unwrap();
        let r = s.run();
        // 2 long + 2 cross flows, all active.
        assert_eq!(r.throughput_mbps.len(), 4);
        assert!(r.throughput_mbps.iter().all(|&t| t > 0.0));
        // The long flows' payoffs exclude the cross traffic.
        assert!(r.mean_throughput_of_first(2, "cubic").is_some());
        assert!(r.mean_throughput_of_first(2, "bbr").is_some());
    }

    #[test]
    fn smoke_run_produces_both_tables() {
        let r = run(&Profile::smoke());
        assert_eq!(r.tables.len(), 2);
        // n = max(6/2, 4) = 4 long flows -> 5 payoff rows.
        assert_eq!(r.tables[0].rows.len(), 5);
        assert_eq!(r.tables[1].rows.len(), 2);
        // Both topologies report at least one equilibrium.
        assert!(!r.tables[1].rows[0][1].is_empty());
        assert!(!r.tables[1].rows[1][1].is_empty());
    }
}
