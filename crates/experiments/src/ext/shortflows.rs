//! ext-shortflows — short transfers over a mixed long-flow Internet
//! (the paper's §5 future work: "more diverse workloads").
//!
//! Setup: `n` backlogged long flows whose CUBIC/BBR mix we sweep, plus a
//! train of short CUBIC transfers (ad-sized, 30 kB, and page-sized,
//! 300 kB) arriving at fixed intervals. We report the short flows' mean
//! completion time (FCT) per long-flow mix.
//!
//! Why it matters for the paper's thesis: the NE analysis uses long-flow
//! throughput as the utility. Short flows care about FCT, which is
//! dominated by the *standing queue* — so as the long-flow mix shifts
//! toward BBR (smaller standing queue in shallow buffers, ProbeRTT
//! drains), short-flow latency changes even though the long flows'
//! throughput equilibrium logic is untouched.

use super::FigResult;
use crate::output::{mean, Table};
use crate::profile::Profile;
use crate::runner;
use crate::scenario::{BackendSpec, DisciplineSpec, FaultSpec, FlowSpec, Scenario};
use bbrdom_cca::CcaKind;
use bbrdom_netsim::hash::{StableHash, StableHasher};

pub const MBPS: f64 = 50.0;
pub const RTT_MS: f64 = 40.0;
pub const BUFFER_BDP: f64 = 8.0;
/// Short-transfer sizes: an ad beacon and a small page.
pub const SHORT_SIZES: [u64; 2] = [30_000, 300_000];

/// Trial seed for grid cell `(n_bbr, si, t)`, derived through the FNV
/// stable hash. The old affine formula (`0x5F_0000 + n_bbr·1009 +
/// si·53 + t·131`) could collide across cells (e.g. `si+1, t-?` vs a
/// `n_bbr` bump once the grid grows), silently correlating trials that
/// must be independent; the hash keeps every cell's seed distinct (see
/// the grid-uniqueness test).
pub fn trial_seed(n_bbr: u32, si: usize, t: u32) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(b"ext-shortflows");
    (n_bbr as u64).stable_hash(&mut h);
    (si as u64).stable_hash(&mut h);
    (t as u64).stable_hash(&mut h);
    h.finish() as u64
}

/// Build a scenario: `n_bbr` of `n_long` long flows run BBR, the rest
/// CUBIC; short CUBIC transfers of `size` bytes arrive every
/// `interval_s` from `warmup_s` on.
pub fn scenario(n_long: u32, n_bbr: u32, size: u64, duration: f64, seed: u64) -> Scenario {
    let mut flows = Vec::new();
    for _ in 0..(n_long - n_bbr) {
        flows.push(FlowSpec::long(CcaKind::Cubic, RTT_MS));
    }
    for _ in 0..n_bbr {
        flows.push(FlowSpec::long(CcaKind::Bbr, RTT_MS));
    }
    // Short flows: start after a warmup third, spaced evenly.
    let warmup = duration / 3.0;
    let n_short = 8u32;
    let spacing = (duration - warmup) / (n_short as f64 + 1.0);
    for i in 0..n_short {
        flows.push(FlowSpec::short(
            CcaKind::Cubic,
            RTT_MS,
            warmup + spacing * i as f64,
            size,
        ));
    }
    Scenario {
        mbps: MBPS,
        buffer_bdp: BUFFER_BDP,
        reference_rtt_ms: RTT_MS,
        flows,
        duration_secs: duration,
        seed,
        discipline: DisciplineSpec::DropTail,
        faults: FaultSpec::default(),
        early_stop: None,
        backend: BackendSpec::Des,
        workload: None,
        topology: None,
    }
}

/// Mean FCT (seconds) of the completed short flows in a trial result.
pub fn mean_fct(result: &crate::scenario::TrialResult) -> Option<f64> {
    let fcts: Vec<f64> = result
        .completion_times_secs
        .iter()
        .filter_map(|c| *c)
        .collect();
    if fcts.is_empty() {
        None
    } else {
        Some(mean(&fcts))
    }
}

pub fn run(profile: &Profile) -> FigResult {
    let n_long = (profile.ne_flows / 2).clamp(4, 10);
    let duration = profile.duration_secs.max(15.0);
    let mut table = Table::new(
        format!(
            "ext-shortflows: short-transfer FCT vs long-flow mix \
             ({n_long} long flows, {MBPS} Mbps, {BUFFER_BDP} BDP)"
        ),
        &["n_bbr_long", "fct_30kB_ms", "fct_300kB_ms", "qdelay_ms"],
    );
    let mut scenarios = Vec::new();
    for n_bbr in 0..=n_long {
        for (si, &size) in SHORT_SIZES.iter().enumerate() {
            for t in 0..profile.trials {
                scenarios.push(scenario(
                    n_long,
                    n_bbr,
                    size,
                    duration,
                    trial_seed(n_bbr, si, t),
                ));
            }
        }
    }
    profile.apply_workload(&mut scenarios);
    let results = runner::run_all(&scenarios);
    let mut idx = 0;
    let mut fct_all_cubic = None;
    let mut fct_all_bbr = None;
    for n_bbr in 0..=n_long {
        let mut per_size = Vec::new();
        let mut qd = Vec::new();
        for _ in &SHORT_SIZES {
            let mut fcts = Vec::new();
            for _ in 0..profile.trials {
                let r = &results[idx];
                idx += 1;
                if let Some(f) = mean_fct(r) {
                    fcts.push(f);
                }
                qd.push(r.avg_queuing_delay_ms);
            }
            per_size.push(if fcts.is_empty() {
                f64::NAN
            } else {
                mean(&fcts)
            });
        }
        // NaN means no short flow of that size completed; the headline
        // note must not claim a "NaN ms" FCT for the run.
        if n_bbr == 0 && per_size[0].is_finite() {
            fct_all_cubic = Some(per_size[0]);
        }
        if n_bbr == n_long && per_size[0].is_finite() {
            fct_all_bbr = Some(per_size[0]);
        }
        table.push_floats(&[
            n_bbr as f64,
            per_size[0] * 1e3,
            per_size[1] * 1e3,
            mean(&qd),
        ]);
    }
    let note = match (fct_all_cubic, fct_all_bbr) {
        (Some(c), Some(b)) => format!(
            "30 kB FCT: {:.0} ms under all-CUBIC vs {:.0} ms under all-BBR long flows \
             — the CCA mix is a latency externality for short flows",
            c * 1e3,
            b * 1e3
        ),
        _ => "some short flows did not complete within the run".to_string(),
    };
    FigResult {
        id: "ext-shortflows",
        tables: vec![table],
        notes: vec![note],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_flows_complete_and_report_fct() {
        let s = scenario(2, 1, 30_000, 15.0, 3);
        let r = s.run();
        let fct = mean_fct(&r).expect("short flows should complete");
        // A 30 kB transfer at ≥ a few Mbps with 40 ms RTT: tens of ms to
        // a few seconds, certainly inside the run.
        assert!(fct > 0.01 && fct < 10.0, "fct={fct}");
        // Long flows report no completion time.
        assert!(r.completion_times_secs[0].is_none());
        assert!(r.completion_times_secs[1].is_none());
    }

    #[test]
    fn trial_seeds_are_unique_over_the_full_grid() {
        // Full-profile grid and then some: every (n_bbr, size, trial)
        // cell must draw a distinct seed — collisions silently correlate
        // trials that the FCT averaging assumes independent.
        let mut seen = std::collections::HashSet::new();
        for n_bbr in 0..=50u32 {
            for si in 0..SHORT_SIZES.len() {
                for t in 0..10u32 {
                    assert!(
                        seen.insert(trial_seed(n_bbr, si, t)),
                        "seed collision at n_bbr={n_bbr} si={si} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn smoke_run_covers_every_mix() {
        let mut p = Profile::smoke();
        p.duration_secs = 9.0;
        let r = run(&p);
        let n_long = (p.ne_flows / 2).clamp(4, 10);
        assert_eq!(r.tables[0].rows.len(), n_long as usize + 1);
    }
}
