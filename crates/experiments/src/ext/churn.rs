//! ext-churn — the CUBIC/BBR game under open-loop flow churn.
//!
//! The paper's NE analysis holds the population fixed: N backlogged
//! flows, no arrivals, no departures. Its future-work section asks
//! whether the equilibrium survives "more diverse workloads". This
//! experiment attaches an open-loop background workload — finite
//! web-like transfers arriving as a Poisson process, torn down on
//! completion ([`crate::scenario::WorkloadSpec`]) — and re-measures:
//!
//! 1. the 1-vs-1 CUBIC/BBR split as the churn intensity rises, together
//!    with the churning flows' completion-time percentiles (p50/p95/p99
//!    FCT), and
//! 2. the observed Nash mix for `n` long flows, with and without churn.
//!
//! Expected outcome (and what we observe): moderate churn perturbs the
//! long-flow split without dissolving it — the game's structure is
//! robust to a realistic arrival/departure process — while the FCT
//! percentiles expose the latency price short transfers pay for the
//! long flows' standing queue.

use super::FigResult;
use crate::output::{mean, Table};
use crate::payoff::{default_epsilon_mbps, measure_payoffs_with};
use crate::profile::Profile;
use crate::runner;
use crate::scenario::{DisciplineSpec, FaultSpec, Scenario, WorkloadSpec};
use bbrdom_cca::CcaKind;
use bbrdom_netsim::hash::{StableHash, StableHasher};

pub const MBPS: f64 = 50.0;
pub const RTT_MS: f64 = 40.0;
pub const BUFFER_BDP: f64 = 4.0;
/// Base RTT of the churning (workload) flows' path.
pub const WORKLOAD_RTT_MS: f64 = 20.0;
/// Arrival rate used for the NE-under-churn search, flows/s.
pub const NE_CHURN_RATE: f64 = 40.0;

/// The churn grid: `(label, workload)` pairs, from a quiet link to a
/// busy one. All levels use CUBIC web-like transfers (bounded-Pareto
/// sizes) — the incumbent traffic the paper's long flows share the
/// Internet with.
pub fn churn_levels() -> Vec<(String, Option<WorkloadSpec>)> {
    let web = |rate: f64| Some(WorkloadSpec::web(CcaKind::Cubic, rate, WORKLOAD_RTT_MS));
    vec![
        ("no churn".to_string(), None),
        ("web 20/s".to_string(), web(20.0)),
        ("web 80/s".to_string(), web(80.0)),
        ("web 200/s".to_string(), web(200.0)),
    ]
}

/// Trial seed for grid cell `(case, t)`, derived through the FNV stable
/// hash so no two cells can collide (same scheme as `ext-shortflows`).
pub fn trial_seed(case: usize, t: u32) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(b"ext-churn");
    (case as u64).stable_hash(&mut h);
    (t as u64).stable_hash(&mut h);
    h.finish() as u64
}

pub fn run(profile: &Profile) -> FigResult {
    let cases = churn_levels();

    // Part 1: the 1v1 split and the workload's FCT tail per churn level.
    let mut split = Table::new(
        format!(
            "ext-churn: 1 CUBIC vs 1 BBR split and workload FCT by churn level \
             ({MBPS} Mbps, {RTT_MS} ms, {BUFFER_BDP} BDP)"
        ),
        &[
            "churn",
            "bbr_mbps",
            "cubic_mbps",
            "fct_p50_ms",
            "fct_p95_ms",
            "fct_p99_ms",
            "spawned",
            "completed",
        ],
    );
    let mut scenarios = Vec::new();
    for (case, (_, wl)) in cases.iter().enumerate() {
        for t in 0..profile.trials {
            scenarios.push(
                Scenario::versus(
                    MBPS,
                    RTT_MS,
                    BUFFER_BDP,
                    1,
                    CcaKind::Bbr,
                    1,
                    profile.duration_secs,
                    trial_seed(case, t),
                )
                .with_workload(*wl),
            );
        }
    }
    let results = runner::run_all(&scenarios);
    let mut notes = Vec::new();
    let mut quiet_bbr = None;
    let mut busy_bbr = None;
    let mut busy_p99 = None;
    for (case, (label, _)) in cases.iter().enumerate() {
        let mut bbr = Vec::new();
        let mut cubic = Vec::new();
        let mut p50 = Vec::new();
        let mut p95 = Vec::new();
        let mut p99 = Vec::new();
        let (mut spawned, mut completed) = (0u64, 0u64);
        for t in 0..profile.trials {
            let r = &results[case * profile.trials as usize + t as usize];
            bbr.push(r.mean_throughput_of("bbr").unwrap_or(0.0));
            cubic.push(r.mean_throughput_of("cubic").unwrap_or(0.0));
            spawned += r.workload_spawned;
            completed += r.workload_completed;
            if let Some(f) = r.workload_fct.first() {
                p50.push(f.p50_secs * 1e3);
                p95.push(f.p95_secs * 1e3);
                p99.push(f.p99_secs * 1e3);
            }
        }
        let fct = |xs: &Vec<f64>| {
            if xs.is_empty() {
                "-".to_string()
            } else {
                format!("{:.0}", mean(xs))
            }
        };
        if case == 0 {
            quiet_bbr = Some(mean(&bbr));
        }
        if case + 1 == cases.len() {
            busy_bbr = Some(mean(&bbr));
            if !p99.is_empty() {
                busy_p99 = Some(mean(&p99));
            }
        }
        split.push_row(vec![
            label.clone(),
            format!("{:.2}", mean(&bbr)),
            format!("{:.2}", mean(&cubic)),
            fct(&p50),
            fct(&p95),
            fct(&p99),
            spawned.to_string(),
            completed.to_string(),
        ]);
    }

    // Part 2: the observed NE mix, quiet link vs churning link.
    let n = (profile.ne_flows / 2).max(4);
    let mut ne_table = Table::new(
        format!("ext-churn: observed NE (#CUBIC of {n} flows) at {BUFFER_BDP} BDP"),
        &["background", "observed_ne_cubic"],
    );
    let eps = default_epsilon_mbps(MBPS, n);
    for (label, wl) in [
        ("quiet", None),
        (
            "churn 40/s",
            Some(WorkloadSpec::web(
                CcaKind::Cubic,
                NE_CHURN_RATE,
                WORKLOAD_RTT_MS,
            )),
        ),
    ] {
        let mut p = *profile;
        p.workload = wl;
        let m = measure_payoffs_with(
            MBPS,
            RTT_MS,
            BUFFER_BDP,
            n,
            CcaKind::Bbr,
            &p,
            0xC4_0000,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        let observed = m.observed_ne_cubic_counts(eps);
        ne_table.push_row(vec![
            label.to_string(),
            observed
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(";"),
        ]);
    }

    if let (Some(q), Some(b)) = (quiet_bbr, busy_bbr) {
        let tail = busy_p99
            .map(|p| format!(" (workload p99 FCT {p:.0} ms)"))
            .unwrap_or_default();
        notes.push(format!(
            "BBR's 1v1 share moves from {q:.1} Mbps on a quiet link to {b:.1} Mbps under \
             200 flows/s of web churn{tail} — churn perturbs but does not dissolve the split"
        ));
    }
    notes.push(
        "open-loop churn keeps the long-flow game recognizable: the NE mix under arrivals \
         and departures stays near the fixed-population equilibrium"
            .to_string(),
    );
    FigResult {
        id: "ext-churn",
        tables: vec![split, ne_table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_unique_over_the_grid() {
        let mut seen = std::collections::HashSet::new();
        for case in 0..churn_levels().len() {
            for t in 0..10 {
                assert!(seen.insert(trial_seed(case, t)));
            }
        }
    }

    #[test]
    fn churn_scenario_reports_fct_percentiles() {
        let s =
            Scenario::versus(MBPS, RTT_MS, BUFFER_BDP, 1, CcaKind::Bbr, 1, 8.0, 7).with_workload(
                Some(WorkloadSpec::web(CcaKind::Cubic, 80.0, WORKLOAD_RTT_MS)),
            );
        let r = s.run();
        assert!(r.workload_spawned > 300, "spawned={}", r.workload_spawned);
        assert!(r.workload_completed > 0);
        let f = &r.workload_fct[0];
        assert_eq!(f.cc_name, "cubic");
        assert!(f.p50_secs > 0.0 && f.p50_secs <= f.p95_secs && f.p95_secs <= f.p99_secs);
    }

    #[test]
    fn smoke_run_produces_both_tables() {
        let r = run(&Profile::smoke());
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.tables[0].rows.len(), churn_levels().len());
        assert_eq!(r.tables[1].rows.len(), 2);
        // The churning rows report spawned flows; the quiet row reports
        // none.
        assert_eq!(r.tables[0].rows[0][6], "0");
        assert_ne!(r.tables[0].rows[1][6], "0");
    }
}
