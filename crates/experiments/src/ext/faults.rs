//! ext-faults — the CUBIC/BBR contest on an impaired path.
//!
//! The paper's testbed is a clean dumbbell: no random loss, no outages,
//! no route changes. Real Internet paths are not. This experiment re-runs
//! two core measurements under injected impairments:
//!
//! 1. the 1-vs-1 CUBIC/BBR split under random wire loss, a mid-run link
//!    outage, and a delay spike (the Fig.-3 contest off the clean path), and
//! 2. the Nash mix for `n` flows under sustained random loss.
//!
//! Expected outcome (and what we observe): random loss is the sharpest
//! lever on the game. CUBIC treats every wire loss as congestion and
//! backs off; BBR's model-based rate ignores sparse loss, so even 0.1%
//! tilts the split toward BBR and pulls the NE toward all-BBR —
//! strengthening the paper's BBR-dominance conclusion on impaired paths.
//!
//! The sweep runs fail-soft ([`runner::run_sweep`]): a trial that dies
//! degrades to a reported error row instead of killing the experiment.

use super::FigResult;
use crate::output::{mean, Table};
use crate::payoff::{default_epsilon_mbps, measure_payoffs_with};
use crate::profile::Profile;
use crate::runner::{self, SweepConfig};
use crate::scenario::{DisciplineSpec, FaultSpec, Scenario};
use bbrdom_cca::CcaKind;

pub const MBPS: f64 = 50.0;
pub const RTT_MS: f64 = 40.0;
pub const BUFFER_BDP: f64 = 4.0;
/// Loss level used for the NE-under-loss search.
pub const NE_LOSS: f64 = 1e-3;

/// The impairment grid: `(label, spec)` pairs. Fault times scale with the
/// profile's duration so `--smoke` still places them mid-run.
pub fn impairments(profile: &Profile) -> Vec<(String, FaultSpec)> {
    let d = profile.duration_secs;
    let mut cases = vec![
        ("clean".to_string(), FaultSpec::default()),
        (
            "loss 0.01%".to_string(),
            FaultSpec {
                loss_fwd: 1e-4,
                ..Default::default()
            },
        ),
        (
            "loss 0.1%".to_string(),
            FaultSpec {
                loss_fwd: 1e-3,
                ..Default::default()
            },
        ),
        (
            "loss 1%".to_string(),
            FaultSpec {
                loss_fwd: 1e-2,
                ..Default::default()
            },
        ),
        (
            "ack-loss 1%".to_string(),
            FaultSpec {
                loss_ack: 1e-2,
                ..Default::default()
            },
        ),
        (
            "outage 10%".to_string(),
            FaultSpec {
                outages: vec![(d / 3.0, d / 10.0)],
                ..Default::default()
            },
        ),
        (
            "delay +2xRTT".to_string(),
            FaultSpec {
                delay_spikes: vec![(d / 3.0, d / 5.0, 2.0 * RTT_MS)],
                ..Default::default()
            },
        ),
    ];
    // `repro --loss/--ack-loss` adds a custom point to the grid.
    let cli = profile.fault_spec();
    if !cli.is_noop() {
        cases.push((
            format!("cli loss={} ack={}", cli.loss_fwd, cli.loss_ack),
            cli,
        ));
    }
    cases
}

pub fn run(profile: &Profile) -> FigResult {
    let cases = impairments(profile);

    // Part 1: the 1v1 split per impairment, fail-soft.
    let mut split = Table::new(
        format!("ext-faults: 1 CUBIC vs 1 BBR split by impairment ({MBPS} Mbps, {RTT_MS} ms, {BUFFER_BDP} BDP)"),
        &[
            "impairment",
            "bbr_mbps",
            "cubic_mbps",
            "qdelay_ms",
            "drops",
        ],
    );
    let mut scenarios = Vec::new();
    for (case_idx, (_, spec)) in cases.iter().enumerate() {
        for t in 0..profile.trials {
            scenarios.push(
                Scenario::versus(
                    MBPS,
                    RTT_MS,
                    BUFFER_BDP,
                    1,
                    CcaKind::Bbr,
                    1,
                    profile.duration_secs,
                    0xFA_0000 + case_idx as u64 * 1009 + t as u64 * 131,
                )
                .with_faults(spec.clone()),
            );
        }
    }
    profile.apply_workload(&mut scenarios);
    // No journal configured, so the only sweep-level error is a failed
    // supervisor bring-up; surface it like any other figure failure.
    let outcomes = runner::run_sweep(&scenarios, &SweepConfig::default())
        .unwrap_or_else(|e| panic!("fault sweep failed: {e}"));
    let mut notes = Vec::new();
    let mut bbr_clean = 0.0;
    let mut bbr_lossy = 0.0;
    let mut cubic_lossy = 0.0;
    for (case_idx, (label, _)) in cases.iter().enumerate() {
        let mut bbr = Vec::new();
        let mut cubic = Vec::new();
        let mut qd = Vec::new();
        let mut drops = 0u64;
        for t in 0..profile.trials {
            let idx = case_idx * profile.trials as usize + t as usize;
            match &outcomes[idx] {
                runner::TrialOutcome::Ok(r) => {
                    bbr.push(r.mean_throughput_of("bbr").unwrap_or(0.0));
                    cubic.push(r.mean_throughput_of("cubic").unwrap_or(0.0));
                    qd.push(r.avg_queuing_delay_ms);
                    drops += r.dropped_packets;
                }
                runner::TrialOutcome::Failed(f) => {
                    notes.push(format!("'{label}' trial {t} failed: {}", f.error));
                }
            }
        }
        if bbr.is_empty() {
            split.push_row(vec![
                label.clone(),
                "failed".into(),
                "failed".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        if label == "clean" {
            bbr_clean = mean(&bbr);
        }
        if label == "loss 1%" {
            bbr_lossy = mean(&bbr);
            cubic_lossy = mean(&cubic);
        }
        split.push_row(vec![
            label.clone(),
            format!("{:.2}", mean(&bbr)),
            format!("{:.2}", mean(&cubic)),
            format!("{:.1}", mean(&qd)),
            drops.to_string(),
        ]);
    }

    // Part 2: the NE mix, clean vs sustained loss.
    let n = (profile.ne_flows / 2).max(4);
    let mut ne_table = Table::new(
        format!("ext-faults: observed NE (#CUBIC of {n} flows) at {BUFFER_BDP} BDP"),
        &["path", "observed_ne_cubic"],
    );
    let eps = default_epsilon_mbps(MBPS, n);
    for (label, spec) in [
        ("clean", FaultSpec::default()),
        (
            "loss 0.1%",
            FaultSpec {
                loss_fwd: NE_LOSS,
                ..Default::default()
            },
        ),
    ] {
        let m = measure_payoffs_with(
            MBPS,
            RTT_MS,
            BUFFER_BDP,
            n,
            CcaKind::Bbr,
            profile,
            0xFB_0000,
            DisciplineSpec::DropTail,
            &spec,
        );
        let observed = m.observed_ne_cubic_counts(eps);
        ne_table.push_row(vec![
            label.to_string(),
            observed
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(";"),
        ]);
    }

    if bbr_lossy > 0.0 {
        notes.push(format!(
            "at 1% wire loss the 1v1 split is BBR {bbr_lossy:.1} vs CUBIC {cubic_lossy:.1} Mbps \
             (clean-path BBR: {bbr_clean:.1}) — loss-blind model-based rating wins impaired paths"
        ));
    }
    notes.push(
        "random loss is the sharpest lever on the game: CUBIC reads wire loss as congestion, \
         BBR ignores it, so impairment accelerates the drift toward BBR dominance"
            .to_string(),
    );
    FigResult {
        id: "ext-faults",
        tables: vec![split, ne_table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_both_tables() {
        let r = run(&Profile::smoke());
        assert_eq!(r.tables.len(), 2);
        // One row per impairment case (none may silently vanish).
        assert_eq!(r.tables[0].rows.len(), impairments(&Profile::smoke()).len());
        assert_eq!(r.tables[1].rows.len(), 2);
    }

    #[test]
    fn loss_tilts_the_split_toward_bbr() {
        // The experiment's headline claim, checked directly: at 1% wire
        // loss BBR out-throughputs CUBIC in the 1v1 contest.
        let lossy = FaultSpec {
            loss_fwd: 1e-2,
            ..Default::default()
        };
        let r = Scenario::versus(MBPS, RTT_MS, BUFFER_BDP, 1, CcaKind::Bbr, 1, 15.0, 11)
            .with_faults(lossy)
            .run();
        let bbr = r.mean_throughput_of("bbr").unwrap();
        let cubic = r.mean_throughput_of("cubic").unwrap();
        assert!(
            bbr > 2.0 * cubic,
            "expected BBR to dominate under loss: bbr={bbr} cubic={cubic}"
        );
    }

    #[test]
    fn cli_loss_extends_the_grid() {
        let mut p = Profile::smoke();
        assert_eq!(impairments(&p).len(), 7);
        p.loss = 0.005;
        let cases = impairments(&p);
        assert_eq!(cases.len(), 8);
        assert!(cases.last().unwrap().0.contains("cli"));
    }
}
