//! ext-aqm — the CUBIC/BBR contest under RED and CoDel bottlenecks.
//!
//! The paper's analysis assumes a drop-tail FIFO; its §1/§5 argue that a
//! mixed CUBIC/BBR Internet stresses AQM and buffer-sizing assumptions.
//! Here we re-run two core measurements under each discipline:
//!
//! 1. the 1-vs-1 split across buffer sizes (the Fig.-3 shape), and
//! 2. the Nash mix for `n` flows at one representative buffer,
//!
//! and report queuing delay alongside. Expected outcome (and what we
//! observe): AQMs compress the game — CoDel keeps the standing queue
//! near its target, which removes CUBIC's ability to fill deep buffers
//! *and* curbs BBR's RTT⁺ inflation, pulling the split toward fairness
//! and shifting the NE mix relative to drop-tail.

use super::FigResult;
use crate::output::{mean, Table};
use crate::payoff::{default_epsilon_mbps, measure_payoffs_with_discipline};
use crate::profile::Profile;
use crate::runner;
use crate::scenario::{DisciplineSpec, Scenario};
use bbrdom_cca::CcaKind;

pub const MBPS: f64 = 50.0;
pub const RTT_MS: f64 = 40.0;
pub const DISCIPLINES: [DisciplineSpec; 3] = [
    DisciplineSpec::DropTail,
    DisciplineSpec::Red,
    DisciplineSpec::Codel,
];

pub fn buffer_sweep(profile: &Profile) -> Vec<f64> {
    profile.thin(vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
}

pub fn run(profile: &Profile) -> FigResult {
    let buffers = buffer_sweep(profile);

    // Part 1: 1v1 split per discipline and buffer.
    let mut split = Table::new(
        format!("ext-aqm: 1 CUBIC vs 1 BBR split by discipline ({MBPS} Mbps, {RTT_MS} ms)"),
        &[
            "buffer_bdp",
            "discipline",
            "bbr_mbps",
            "cubic_mbps",
            "qdelay_ms",
            "aqm_drops",
        ],
    );
    let mut scenarios = Vec::new();
    for &b in &buffers {
        for d in DISCIPLINES {
            for t in 0..profile.trials {
                scenarios.push(
                    Scenario::versus(
                        MBPS,
                        RTT_MS,
                        b,
                        1,
                        CcaKind::Bbr,
                        1,
                        profile.duration_secs,
                        0xA0_0000 + t as u64 * 131 + (b * 10.0) as u64,
                    )
                    .with_discipline(d),
                );
            }
        }
    }
    profile.apply_workload(&mut scenarios);
    let results = runner::run_all(&scenarios);
    let mut idx = 0;
    let mut codel_delay = Vec::new();
    let mut droptail_delay = Vec::new();
    for &b in &buffers {
        for d in DISCIPLINES {
            let mut bbr = Vec::new();
            let mut cubic = Vec::new();
            let mut qd = Vec::new();
            let mut aqm = 0u64;
            for _ in 0..profile.trials {
                let r = &results[idx];
                idx += 1;
                bbr.push(r.mean_throughput_of("bbr").unwrap_or(0.0));
                cubic.push(r.mean_throughput_of("cubic").unwrap_or(0.0));
                qd.push(r.avg_queuing_delay_ms);
                aqm += r.aqm_drops;
            }
            match d {
                DisciplineSpec::Codel => codel_delay.push(mean(&qd)),
                DisciplineSpec::DropTail => droptail_delay.push(mean(&qd)),
                _ => {}
            }
            split.push_row(vec![
                format!("{b:.1}"),
                d.name().to_string(),
                format!("{:.2}", mean(&bbr)),
                format!("{:.2}", mean(&cubic)),
                format!("{:.1}", mean(&qd)),
                aqm.to_string(),
            ]);
        }
    }

    // Part 2: the NE mix per discipline at a mid-depth buffer.
    let n = (profile.ne_flows / 2).max(4);
    let buffer = 8.0;
    let mut ne_table = Table::new(
        format!("ext-aqm: observed NE (#CUBIC of {n} flows) at {buffer} BDP"),
        &["discipline", "observed_ne_cubic"],
    );
    let eps = default_epsilon_mbps(MBPS, n);
    for d in DISCIPLINES {
        let m = measure_payoffs_with_discipline(
            MBPS,
            RTT_MS,
            buffer,
            n,
            CcaKind::Bbr,
            profile,
            0xA1_0000,
            d,
        );
        let observed = m.observed_ne_cubic_counts(eps);
        ne_table.push_row(vec![
            d.name().to_string(),
            observed
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(";"),
        ]);
    }

    let delay_note = if !codel_delay.is_empty() && !droptail_delay.is_empty() {
        format!(
            "CoDel holds mean queuing delay at {:.1} ms vs drop-tail's {:.1} ms (deepest buffer)",
            codel_delay.last().unwrap(),
            droptail_delay.last().unwrap()
        )
    } else {
        String::new()
    };
    FigResult {
        id: "ext-aqm",
        tables: vec![split, ne_table],
        notes: vec![
            delay_note,
            "AQM changes the game's substrate: the paper's drop-tail NE analysis \
             is a special case, not the general Internet."
                .to_string(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_both_tables() {
        let r = run(&Profile::smoke());
        assert_eq!(r.tables.len(), 2);
        assert!(!r.tables[0].rows.is_empty());
        assert_eq!(r.tables[1].rows.len(), 3);
    }

    #[test]
    fn codel_caps_queueing_delay_vs_droptail() {
        // Direct check of the AQM's effect with CUBIC (the buffer-filler):
        // CoDel should hold delay near its 5 ms target even in a deep
        // buffer, where drop-tail lets CUBIC fill it.
        let deep = 16.0;
        let base = Scenario::versus(20.0, 40.0, deep, 2, CcaKind::Cubic, 0, 15.0, 5);
        let droptail = base.clone().run();
        let codel = base.with_discipline(DisciplineSpec::Codel).run();
        assert!(
            codel.avg_queuing_delay_ms < droptail.avg_queuing_delay_ms / 2.0,
            "codel {} vs droptail {}",
            codel.avg_queuing_delay_ms,
            droptail.avg_queuing_delay_ms
        );
        assert!(codel.aqm_drops > 0);
    }
}
