//! Fluid-backend performance: the simulate-cheap/verify-expensive claim.
//!
//! Not a paper figure — this pins the fluid backend's two promises on
//! one fig 9 panel (100 Mbps / 40 ms, a buffer sweep, every distribution
//! of `n` flows):
//!
//! 1. **Speed**: running the whole payoff grid on the fluid backend is
//!    at least 100× faster wall-clock than the same grid on the packet
//!    DES (both through the same engine, same job count).
//! 2. **Fidelity where it counts**: the two-tier adaptive search (fluid
//!    oracle locates the band, DES certifies only the bracket —
//!    `bbrdom_experiments::adaptive`) lands within one grid step of the
//!    dense DES answer on every buffer point of the panel.
//!
//! Both are asserted inline, so a regression fails the bench run.
//! Besides the stdout report, the run writes `BENCH_fluid.json` at the
//! repo root (format documented in `EXPERIMENTS.md`). The speedup is
//! hardware-dependent, so the file records the core count next to it.

use bbrdom_cca::CcaKind;
use bbrdom_experiments::adaptive::find_ne_adaptive_on;
use bbrdom_experiments::engine::{Engine, EngineConfig};
use bbrdom_experiments::payoff::{
    default_epsilon_mbps, distribution_scenario, measure_payoffs_at_on,
};
use bbrdom_experiments::{BackendSpec, DisciplineSpec, FaultSpec, Profile};
use std::time::{Duration, Instant};

/// The pinned fig 9 panel: 100 Mbps / 40 ms, four buffer depths
/// spanning shallow to deep, 6 flows, 20 s horizon. DES cost scales
/// with bandwidth (packets to schedule) while fluid cost scales with
/// steps-per-horizon (inversely with RTT), so the speedup below is
/// panel-dependent; this is a *central* fig 9 panel, not the most
/// favourable one.
const MBPS: f64 = 100.0;
const RTT_MS: f64 = 40.0;
const BUFFERS: [f64; 4] = [0.5, 2.0, 8.0, 32.0];
const N: u32 = 6;
const SEED: u64 = 0xf1d0;
const DURATION_SECS: f64 = 20.0;
/// The pinned speedup floor for the full grid, fluid vs DES.
const MIN_SPEEDUP: f64 = 100.0;

fn engine(jobs: usize) -> Engine {
    Engine::new(EngineConfig {
        jobs,
        disk_cache: None,
        memory_cache: true,
        supervise: None,
        result_store: false,
    })
}

fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Smallest grid distance between two observed NE sets (`None` when
/// exactly one side is empty — an automatic failure).
fn ne_distance(a: &[u32], b: &[u32]) -> Option<u32> {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => Some(0),
        (true, false) | (false, true) => None,
        _ => a
            .iter()
            .flat_map(|&x| b.iter().map(move |&y| x.abs_diff(y)))
            .min(),
    }
}

fn fmt_set(s: &[u32]) -> String {
    let inner = s
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    format!("[{inner}]")
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let jobs = cores.min(4);
    let profile = Profile {
        duration_secs: DURATION_SECS,
        ne_flows: N,
        ne_trials: 1,
        ..Profile::smoke()
    };
    let eps = default_epsilon_mbps(MBPS, N);
    let all_ks: Vec<u32> = (0..=N).collect();

    // The full panel grid: every (buffer, k) cell, on each backend.
    let grid = |backend: BackendSpec| -> Vec<bbrdom_experiments::Scenario> {
        BUFFERS
            .iter()
            .flat_map(|&buf| {
                all_ks.iter().map(move |&k| {
                    let mut s = distribution_scenario(
                        MBPS,
                        RTT_MS,
                        buf,
                        N,
                        k,
                        0,
                        CcaKind::Bbr,
                        &profile,
                        SEED,
                        DisciplineSpec::DropTail,
                        &FaultSpec::default(),
                    );
                    s.backend = backend;
                    s
                })
            })
            .collect()
    };

    let des_engine = engine(jobs);
    let des_grid = grid(BackendSpec::Des);
    let (_, des_wall) = time(|| des_engine.run_all(&des_grid));

    let fluid_engine = engine(jobs);
    let fluid_grid = grid(BackendSpec::Fluid);
    let (_, fluid_wall) = time(|| fluid_engine.run_all(&fluid_grid));

    let speedup = des_wall.as_secs_f64() / fluid_wall.as_secs_f64().max(1e-9);
    println!(
        "fluid_perf/grid: {} cells  DES {des_wall:>8.3?}  fluid {fluid_wall:>8.3?}  ({speedup:.0}x)",
        des_grid.len()
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "fluid grid must be >= {MIN_SPEEDUP}x faster than DES (measured {speedup:.1}x)"
    );

    // Two-tier NE per buffer point vs the dense DES answer.
    let mut rows = Vec::new();
    for &buf in &BUFFERS {
        let dense_ne = measure_payoffs_at_on(
            &engine(jobs),
            MBPS,
            RTT_MS,
            buf,
            N,
            &all_ks,
            CcaKind::Bbr,
            &profile,
            SEED,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        )
        .observed_ne_cubic_counts(eps);
        let two_tier = find_ne_adaptive_on(
            &engine(jobs),
            MBPS,
            RTT_MS,
            buf,
            N,
            CcaKind::Bbr,
            &profile,
            SEED,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        let distance = ne_distance(&two_tier.ne_cubic, &dense_ne);
        println!(
            "fluid_perf/ne buf={buf}: dense {dense_ne:?} two-tier {:?} \
             (fluid band {:?}, oracle {:?}, retries {}, fallback {})",
            two_tier.ne_cubic,
            two_tier.fluid_band,
            two_tier.oracle.map(|o| o.name()),
            two_tier.oracle_retries,
            two_tier.dense_fallback,
        );
        assert!(
            distance.is_some_and(|d| d <= 1),
            "two-tier NE {:?} must land within one grid step of dense {dense_ne:?} at buf={buf}",
            two_tier.ne_cubic
        );
        rows.push(format!(
            "    {{\"buffer_bdp\": {buf}, \"dense_ne_cubic\": {}, \"two_tier_ne_cubic\": {}, \
             \"ne_grid_distance\": {}, \"oracle\": {}, \"oracle_retries\": {}, \
             \"dense_fallback\": {}}}",
            fmt_set(&dense_ne),
            fmt_set(&two_tier.ne_cubic),
            distance.expect("checked above"),
            two_tier
                .oracle
                .map(|o| format!("\"{}\"", o.name()))
                .unwrap_or_else(|| "null".to_string()),
            two_tier.oracle_retries,
            two_tier.dense_fallback,
        ));
    }

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fluid.json");
    let json = format!(
        "{{\n  \"schema\": \"fluid-perf-v1\",\n  \"cores\": {cores},\n  \"jobs\": {jobs},\n  \
         \"panel\": {{\"mbps\": {MBPS}, \"rtt_ms\": {RTT_MS}, \"buffers_bdp\": [0.5, 2.0, 8.0, 32.0], \
         \"n\": {N}, \"duration_secs\": {DURATION_SECS}, \"seed\": {SEED}}},\n  \
         \"grid_cells\": {},\n  \"des_secs\": {:.6},\n  \"fluid_secs\": {:.6},\n  \
         \"speedup\": {speedup:.1},\n  \"min_speedup\": {MIN_SPEEDUP},\n  \
         \"ne_rows\": [\n{}\n  ]\n}}\n",
        des_grid.len(),
        des_wall.as_secs_f64(),
        fluid_wall.as_secs_f64(),
        rows.join(",\n"),
    );
    std::fs::write(out, json).expect("write BENCH_fluid.json");
    println!("wrote {out}");
}
