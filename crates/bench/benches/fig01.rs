//! Bench for Fig. 1: the Ware et al. baseline model across the buffer
//! sweep, plus one simulated point (1 CUBIC vs 1 BBR).

use bbrdom_core::model::ware::WareModel;
use bbrdom_core::model::LinkParams;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn ware_sweep() -> f64 {
    let mut acc = 0.0;
    for i in 1..=100 {
        let b = i as f64 * 0.5;
        let m = WareModel::new(LinkParams::from_paper_units(50.0, 40.0, b), 1, 120.0);
        acc += m.predict().unwrap().bbr_mbps();
    }
    acc
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01");
    g.bench_function("ware_model_sweep_100pts", |b| {
        b.iter(|| black_box(ware_sweep()))
    });
    g.sample_size(10);
    g.bench_function("sim_point_1v1_bbr", |b| {
        b.iter(|| black_box(bbrdom_bench::tiny_sim(20.0, 2.0, bbrdom_cca::CcaKind::Bbr)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
