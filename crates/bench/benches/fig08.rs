//! Bench for Fig. 8: the full payoff-curve measurement (throughput and
//! queuing delay over every CUBIC/BBR split) at smoke scale.

use bbrdom_cca::CcaKind;
use bbrdom_experiments::payoff::measure_payoffs;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let profile = bbrdom_bench::bench_profile();
    let mut g = c.benchmark_group("fig08");
    g.sample_size(10);
    g.bench_function("payoff_curves_4flows", |b| {
        b.iter(|| {
            black_box(measure_payoffs(
                20.0,
                20.0,
                2.0,
                4,
                CcaKind::Bbr,
                &profile,
                7,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
