//! Payoff-engine performance: parallel speedup and cache effectiveness.
//!
//! Not a paper figure — this tracks the scenario engine
//! (`bbrdom_experiments::engine`) that every payoff matrix and NE search
//! runs through: a payoff-shaped batch of simulations timed three ways —
//! serial and uncached (the PR-3 baseline), parallel across the
//! machine's cores, and a warm rerun against a populated disk cache. The
//! run also verifies the engine's core guarantee inline: the parallel
//! result vector must be bit-identical to the serial one.
//!
//! Besides the stdout report, the run writes `BENCH_payoff.json` at the
//! repo root (format documented in `EXPERIMENTS.md`). Speedup is
//! machine-relative — the file records the core count next to the
//! numbers, so a 1-core box reporting ~1.0x is expected, not a
//! regression.

use bbrdom_cca::CcaKind;
use bbrdom_experiments::engine::{Engine, EngineConfig};
use bbrdom_experiments::Scenario;
use std::time::{Duration, Instant};

/// A payoff-matrix-shaped batch: every CUBIC/BBR split of `n` flows,
/// several trial seeds each — the workload `payoff::measure_payoffs`
/// fans out.
fn payoff_batch() -> Vec<Scenario> {
    let n = 4u32;
    let trials = 3u64;
    let mut scenarios = Vec::new();
    for n_bbr in 0..=n {
        for trial in 0..trials {
            scenarios.push(Scenario::versus(
                20.0,
                20.0,
                2.0,
                n - n_bbr,
                CcaKind::Bbr,
                n_bbr,
                2.0,
                1 + trial * 7919,
            ));
        }
    }
    scenarios
}

fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

fn result_fingerprint(results: &[bbrdom_experiments::TrialResult]) -> String {
    results
        .iter()
        .map(|r| r.to_json_value().to_json())
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let scenarios = payoff_batch();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let jobs = cores.min(4);

    let uncached = || {
        Engine::new(EngineConfig {
            jobs: 1,
            disk_cache: None,
            memory_cache: false,
            supervise: None,
            result_store: false,
        })
    };
    // Warm-up: fault the code paths and page in the batch once.
    uncached().run_all_jobs(&scenarios[..2.min(scenarios.len())], 1);

    let (serial_results, serial) = time(|| uncached().run_all_jobs(&scenarios, 1));
    let (parallel_results, parallel) = time(|| uncached().run_all_jobs(&scenarios, jobs));

    let bit_identical =
        result_fingerprint(&serial_results) == result_fingerprint(&parallel_results);
    assert!(
        bit_identical,
        "parallel payoff results diverged from serial — engine determinism is broken"
    );

    // Disk cache: one cold populating run, then a timed warm rerun.
    let cache_dir =
        std::env::temp_dir().join(format!("bbrdom-payoff-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let with_cache = || {
        Engine::new(EngineConfig {
            jobs,
            disk_cache: Some(cache_dir.clone()),
            memory_cache: false,
            supervise: None,
            result_store: false,
        })
    };
    with_cache().run_all(&scenarios);
    let warm_engine = with_cache();
    let (_, warm) = time(|| warm_engine.run_all(&scenarios));
    let stats = warm_engine.stats();
    let skipped_pct = 100.0 * stats.skipped() as f64 / stats.total().max(1) as f64;
    let _ = std::fs::remove_dir_all(&cache_dir);

    let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
    let warm_speedup = serial.as_secs_f64() / warm.as_secs_f64().max(1e-9);
    println!(
        "payoff/{} scenarios: serial {:>9.3?}  jobs={jobs} {:>9.3?} ({speedup:.2}x)  \
         warm-cache {:>9.3?} ({warm_speedup:.1}x, {skipped_pct:.0}% skipped)  \
         [{cores} cores, bit-identical: {bit_identical}]",
        scenarios.len(),
        serial,
        parallel,
        warm,
    );

    // Repo root: two levels up from this crate's manifest.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_payoff.json");
    let json = format!(
        "{{\n  \"schema\": \"payoff-perf-v1\",\n  \"cores\": {cores},\n  \"jobs\": {jobs},\n  \
         \"scenarios\": {},\n  \"serial_secs\": {:.6},\n  \"parallel_secs\": {:.6},\n  \
         \"speedup\": {:.3},\n  \"warm_cache_secs\": {:.6},\n  \"warm_cache_speedup\": {:.1},\n  \
         \"cache_skipped_pct\": {:.1},\n  \"bit_identical\": {bit_identical}\n}}\n",
        scenarios.len(),
        serial.as_secs_f64(),
        parallel.as_secs_f64(),
        speedup,
        warm.as_secs_f64(),
        warm_speedup,
        skipped_pct,
    );
    std::fs::write(out, json).expect("write BENCH_payoff.json");
    println!("wrote {out}");
}
