//! Sweep-scale performance: adaptive NE search + early termination vs
//! the dense fixed-horizon grid.
//!
//! Not a paper figure — this pins the PR's perf claim on one case: the
//! dense §4.4 NE search simulates every distribution `k = 0..=n` to the
//! full horizon, while the model-guided adaptive search
//! (`bbrdom_experiments::adaptive`, `repro --adaptive`) simulates only
//! the cells near the Eq. (25) crossing, each run cut short by the
//! convergence detector (`--early-stop`). Both paths must land on the
//! same equilibrium cell (within one grid step); the adaptive path must
//! simulate at least 3× fewer events and finish in less wall-clock.
//! These are asserted inline, so a regression fails the bench run.
//!
//! Besides the stdout report, the run writes `BENCH_sweep.json` at the
//! repo root (format documented in `EXPERIMENTS.md`). Event counts are
//! machine-independent; the wall-clock columns are not, so the file
//! records the core count next to them.

use bbrdom_cca::CcaKind;
use bbrdom_experiments::adaptive::find_ne_adaptive_on;
use bbrdom_experiments::engine::{Engine, EngineConfig};
use bbrdom_experiments::payoff::{default_epsilon_mbps, measure_payoffs_at_on};
use bbrdom_experiments::{DisciplineSpec, FaultSpec, Profile};
use std::time::{Duration, Instant};

/// The pinned case: 8 flows on a 30 Mbps / 20 ms / 5 BDP bottleneck,
/// 40 s horizon — big enough that the dense grid visibly pays for its
/// 9 full-horizon cells, small enough for a CI smoke.
const MBPS: f64 = 30.0;
const RTT_MS: f64 = 20.0;
const BUFFER_BDP: f64 = 5.0;
const N: u32 = 8;
const SEED: u64 = 0x57e9;
const DURATION_SECS: f64 = 40.0;

/// Early-stop policy for the adaptive side. The per-flow goodput of an
/// 8-flow CUBIC/BBR mix keeps trading ~10-20% between 1 s windows even
/// in steady state, so the detector tolerance sits above that band.
const EARLY_STOP: (f64, u32) = (0.4, 2);

fn engine(jobs: usize) -> Engine {
    Engine::new(EngineConfig {
        jobs,
        disk_cache: None,
        memory_cache: true,
        supervise: None,
        result_store: false,
    })
}

fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Smallest grid distance between the two observed NE sets (`None` when
/// exactly one side is empty — an automatic failure).
fn ne_distance(a: &[u32], b: &[u32]) -> Option<u32> {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => Some(0),
        (true, false) | (false, true) => None,
        _ => a
            .iter()
            .flat_map(|&x| b.iter().map(move |&y| x.abs_diff(y)))
            .min(),
    }
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let jobs = cores.min(4);
    let dense_profile = Profile {
        duration_secs: DURATION_SECS,
        ne_flows: N,
        ne_trials: 1,
        ..Profile::smoke()
    };
    let adaptive_profile = Profile {
        adaptive: true,
        early_stop: Some(EARLY_STOP),
        ..dense_profile
    };
    let all_ks: Vec<u32> = (0..=N).collect();
    let eps = default_epsilon_mbps(MBPS, N);

    // Dense baseline: every distribution, full horizon.
    let dense_engine = engine(jobs);
    let (dense_ne, dense_wall) = time(|| {
        measure_payoffs_at_on(
            &dense_engine,
            MBPS,
            RTT_MS,
            BUFFER_BDP,
            N,
            &all_ks,
            CcaKind::Bbr,
            &dense_profile,
            SEED,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        )
        .observed_ne_cubic_counts(eps)
    });
    let dense_events = dense_engine.stats().events_simulated;

    // Adaptive: model-seeded bracket, convergence-stopped runs.
    let adaptive_engine = engine(jobs);
    let (adaptive, adaptive_wall) = time(|| {
        find_ne_adaptive_on(
            &adaptive_engine,
            MBPS,
            RTT_MS,
            BUFFER_BDP,
            N,
            CcaKind::Bbr,
            &adaptive_profile,
            SEED,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        )
    });
    let adaptive_events = adaptive_engine.stats().events_simulated;

    let distance = ne_distance(&adaptive.ne_cubic, &dense_ne);
    let reduction = dense_events as f64 / adaptive_events.max(1) as f64;
    println!(
        "sweep/n={N}: dense {} cells {dense_events} events {dense_wall:>8.3?}  \
         adaptive {} cells {adaptive_events} events {adaptive_wall:>8.3?}  \
         ({reduction:.1}x fewer events; NE dense {dense_ne:?} vs adaptive {:?}; \
         band {:?}; fallback {})",
        all_ks.len(),
        adaptive.evaluated.len(),
        adaptive.ne_cubic,
        adaptive.model_band,
        adaptive.dense_fallback,
    );

    assert!(
        distance.is_some_and(|d| d <= 1),
        "adaptive NE {:?} must land within one grid step of dense {:?}",
        adaptive.ne_cubic,
        dense_ne
    );
    assert!(
        adaptive_events * 3 <= dense_events,
        "adaptive simulated {adaptive_events} events, need <= 1/3 of dense {dense_events}"
    );
    assert!(
        adaptive_wall < dense_wall,
        "adaptive wall-clock {adaptive_wall:?} must beat dense {dense_wall:?}"
    );

    let fmt_set = |s: &[u32]| {
        let inner = s
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        format!("[{inner}]")
    };
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    let json = format!(
        "{{\n  \"schema\": \"sweep-perf-v1\",\n  \"cores\": {cores},\n  \"jobs\": {jobs},\n  \
         \"case\": {{\"mbps\": {MBPS}, \"rtt_ms\": {RTT_MS}, \"buffer_bdp\": {BUFFER_BDP}, \
         \"n\": {N}, \"duration_secs\": {DURATION_SECS}, \"seed\": {SEED}}},\n  \
         \"early_stop\": {{\"epsilon\": {}, \"dwell\": {}}},\n  \
         \"dense_cells\": {},\n  \"dense_events\": {dense_events},\n  \
         \"dense_secs\": {:.6},\n  \
         \"adaptive_cells\": {},\n  \"adaptive_events\": {adaptive_events},\n  \
         \"adaptive_secs\": {:.6},\n  \"event_reduction\": {reduction:.2},\n  \
         \"dense_ne_cubic\": {},\n  \"adaptive_ne_cubic\": {},\n  \
         \"ne_grid_distance\": {},\n  \"dense_fallback\": {}\n}}\n",
        EARLY_STOP.0,
        EARLY_STOP.1,
        all_ks.len(),
        dense_wall.as_secs_f64(),
        adaptive.evaluated.len(),
        adaptive_wall.as_secs_f64(),
        fmt_set(&dense_ne),
        fmt_set(&adaptive.ne_cubic),
        distance.expect("checked above"),
        adaptive.dense_fallback,
    );
    std::fs::write(out, json).expect("write BENCH_sweep.json");
    println!("wrote {out}");
}
