//! Bench for Fig. 3: the paper's 2-flow model (closed-form quadratic)
//! across all four panels' sweeps, plus one simulated validation point.

use bbrdom_core::model::two_flow::TwoFlowModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn model_sweep() -> f64 {
    let mut acc = 0.0;
    for (mbps, rtt) in [(50.0, 40.0), (50.0, 80.0), (100.0, 40.0), (100.0, 80.0)] {
        for i in 2..=60 {
            let b = i as f64 * 0.5;
            acc += TwoFlowModel::from_paper_units(mbps, rtt, b)
                .solve()
                .unwrap()
                .bbr_mbps();
        }
    }
    acc
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig03");
    g.bench_function("two_flow_model_4panels", |b| {
        b.iter(|| black_box(model_sweep()))
    });
    g.sample_size(10);
    g.bench_function("sim_validation_point", |b| {
        b.iter(|| black_box(bbrdom_bench::tiny_sim(20.0, 5.0, bbrdom_cca::CcaKind::Bbr)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
