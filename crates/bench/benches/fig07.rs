//! Bench for Fig. 7: one CUBIC-vs-challenger simulation slice per
//! post-BBR algorithm (BBR, BBRv2, Copa, Vivace).

use bbrdom_cca::CcaKind;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07");
    g.sample_size(10);
    for x in CcaKind::CHALLENGERS {
        g.bench_function(format!("sim_1v1_{}", x.name()), |b| {
            b.iter(|| black_box(bbrdom_bench::tiny_sim(20.0, 2.0, x)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
