//! Simulator-core performance: event throughput of the dumbbell DES.
//!
//! Not a paper figure — this tracks the substrate's speed (events/sec),
//! which bounds how fast the paper-scale sweeps (`repro --full`) run.

use bbrdom_netsim::cc::FixedWindow;
use bbrdom_netsim::{FlowConfig, Rate, SimConfig, SimDuration, Simulator};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// One simulated second at 100 Mbps with 10 fixed-window flows
/// ≈ 8.3k packets ≈ 33k events.
fn run_slice() -> u64 {
    let rate = Rate::from_mbps(100.0);
    let rtt = SimDuration::from_millis(20);
    let buf = bbrdom_netsim::units::buffer_bytes(rate, rtt, 2.0);
    let mut sim = Simulator::new(SimConfig::new(rate, buf, SimDuration::from_secs_f64(1.0)));
    let bdp = rate.bdp_bytes(rtt);
    for _ in 0..10 {
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(bdp / 3)), rtt));
    }
    let report = sim.run();
    report.flows.iter().map(|f| f.goodput_bytes).sum()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim");
    g.throughput(Throughput::Elements(33_000));
    g.bench_function("dumbbell_1s_10flows_100mbps", |b| b.iter(|| black_box(run_slice())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
