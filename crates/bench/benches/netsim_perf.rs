//! Simulator-core performance: event throughput of the dumbbell DES.
//!
//! Not a paper figure — this tracks the substrate's speed (events/sec),
//! which bounds how fast the paper-scale sweeps (`repro --full`) run.
//!
//! Three slices of one simulated second at 100 Mbps / 20 ms: a single
//! saturating flow (in-order fast path), the historical 10-flow mix (the
//! cross-engine comparison case — keep its config stable), and a 50-flow
//! overload that drops and retransmits (scoreboard + loss-marking path).
//!
//! Besides the stdout report, the run writes `BENCH_netsim.json` at the
//! repo root: machine-readable events/sec per case (format documented in
//! `EXPERIMENTS.md`), so perf regressions are diffable in review.

use bbrdom_netsim::cc::FixedWindow;
use bbrdom_netsim::{FlowConfig, Rate, SimConfig, SimDuration, Simulator};
use std::hint::black_box;
use std::time::{Duration, Instant};

struct Case {
    name: &'static str,
    flows: usize,
    /// Per-flow fixed window as a fraction of the path BDP.
    window_bdp: f64,
}

const CASES: &[Case] = &[
    Case {
        name: "dumbbell_1s_1flow_100mbps",
        flows: 1,
        window_bdp: 2.0,
    },
    Case {
        name: "dumbbell_1s_10flows_100mbps",
        flows: 10,
        window_bdp: 1.0 / 3.0,
    },
    Case {
        name: "dumbbell_1s_50flows_100mbps",
        flows: 50,
        window_bdp: 1.0 / 8.0,
    },
];

fn build_sim(case: &Case) -> Simulator {
    let rate = Rate::from_mbps(100.0);
    let rtt = SimDuration::from_millis(20);
    let buf = bbrdom_netsim::units::buffer_bytes(rate, rtt, 2.0);
    let mut sim = Simulator::new(SimConfig::new(rate, buf, SimDuration::from_secs_f64(1.0)));
    let bdp = rate.bdp_bytes(rtt);
    let window = ((bdp as f64 * case.window_bdp) as u64).max(bbrdom_netsim::MSS);
    for _ in 0..case.flows {
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(window)), rtt));
    }
    sim
}

struct Measurement {
    events: u64,
    median: Duration,
    min: Duration,
}

/// Time `samples` full runs of one case (after one untimed warm-up).
fn measure(case: &Case, samples: usize) -> Measurement {
    let events = build_sim(case).run().events_processed;
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let mut sim = build_sim(case);
            let start = Instant::now();
            black_box(sim.run());
            start.elapsed()
        })
        .collect();
    times.sort();
    Measurement {
        events,
        median: times[times.len() / 2],
        min: times[0],
    }
}

fn events_per_sec(m: &Measurement) -> f64 {
    m.events as f64 / m.median.as_secs_f64()
}

fn main() {
    let samples: usize = std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);

    let mut results = Vec::new();
    for case in CASES {
        let m = measure(case, samples);
        println!(
            "netsim/{:<32} median {:>12.3?}  min {:>12.3?}  {:>12.0} events/s  ({} events)",
            case.name,
            m.median,
            m.min,
            events_per_sec(&m),
            m.events,
        );
        results.push((case, m));
    }

    // Repo root: two levels up from this crate's manifest.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netsim.json");
    let mut json = String::from("{\n  \"schema\": \"netsim-perf-v1\",\n  \"cases\": [\n");
    for (i, (case, m)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"flows\": {}, \"events\": {}, \
             \"median_secs\": {:.6}, \"min_secs\": {:.6}, \"events_per_sec\": {:.0}}}{}\n",
            case.name,
            case.flows,
            m.events,
            m.median.as_secs_f64(),
            m.min.as_secs_f64(),
            events_per_sec(m),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out, json).expect("write BENCH_netsim.json");
    println!("wrote {out}");
}
