//! Simulator-core performance: event throughput of the dumbbell DES.
//!
//! Not a paper figure — this tracks the substrate's speed (events/sec),
//! which bounds how fast the paper-scale sweeps (`repro --full`) run.
//!
//! Three slices of one simulated second at 100 Mbps / 20 ms — a single
//! saturating flow (in-order fast path), the historical 10-flow mix (the
//! cross-engine comparison case — keep its config stable), and a 50-flow
//! overload that drops and retransmits (scoreboard + loss-marking path) —
//! plus a 10-second open-loop churn case that spawns and tears down over
//! ten thousand finite flows, exercising the workload engine's slot
//! recycling at internet-like arrival rates, and a 3-hop parking-lot
//! chain with per-hop cross traffic, exercising the multi-hop
//! enqueue → serialize → propagate path (each packet of a long flow is
//! ~3× the event work of the dumbbell case). The churn and parking-lot
//! cases carry pinned events/sec floors: a regression that makes
//! teardown, slot reuse, or hop forwarding leak work shows up as a hard
//! bench failure, not a silent slowdown (set `BENCH_NO_FLOOR=1` to
//! report without gating, e.g. on loaded CI boxes).
//!
//! Besides the stdout report, the run writes `BENCH_netsim.json` at the
//! repo root: machine-readable events/sec per case (format documented in
//! `EXPERIMENTS.md`), so perf regressions are diffable in review.

use bbrdom_netsim::cc::FixedWindow;
use bbrdom_netsim::{
    ArrivalProcess, FlowConfig, Rate, SimConfig, SimDuration, Simulator, SizeDist, Topology,
    WorkloadConfig, MSS,
};
use std::hint::black_box;
use std::time::{Duration, Instant};

struct Case {
    name: &'static str,
    flows: usize,
    /// Per-flow fixed window as a fraction of the path BDP.
    window_bdp: f64,
    /// Simulated horizon, seconds.
    secs: f64,
    /// Open-loop churn: `(arrival rate flows/s, fixed flow size bytes)`.
    /// Expected cumulative spawns ≈ rate × secs.
    workload: Option<(f64, u64)>,
    /// Multi-hop: `(chain hops, cross flows per hop)`; `flows` long
    /// flows traverse the whole chain, each cross flow one hop. `None`
    /// is the legacy implicit dumbbell.
    parking_lot: Option<(u32, usize)>,
    /// Pinned regression floor, events/sec (0 = report only, no gate).
    /// Deliberately conservative — roughly a quarter of what a 2024
    /// laptop core sustains — so it only trips on structural
    /// regressions (leaked timers, unrecycled slots), not machine noise.
    floor_events_per_sec: f64,
}

const CASES: &[Case] = &[
    Case {
        name: "dumbbell_1s_1flow_100mbps",
        flows: 1,
        window_bdp: 2.0,
        secs: 1.0,
        workload: None,
        parking_lot: None,
        floor_events_per_sec: 0.0,
    },
    Case {
        name: "dumbbell_1s_10flows_100mbps",
        flows: 10,
        window_bdp: 1.0 / 3.0,
        secs: 1.0,
        workload: None,
        parking_lot: None,
        floor_events_per_sec: 0.0,
    },
    Case {
        name: "dumbbell_1s_50flows_100mbps",
        flows: 50,
        window_bdp: 1.0 / 8.0,
        secs: 1.0,
        workload: None,
        parking_lot: None,
        floor_events_per_sec: 0.0,
    },
    // ~12k cumulative open-loop flows (Poisson 1200/s × 10 s of 8 kB
    // transfers ≈ 77 Mbps offered) over 2 long flows. The bench asserts
    // ≥ 10k spawns and gates on the events/s floor.
    Case {
        name: "dumbbell_10s_churn12k_100mbps",
        flows: 2,
        window_bdp: 0.5,
        secs: 10.0,
        workload: Some((1200.0, 8_000)),
        parking_lot: None,
        floor_events_per_sec: 1_000_000.0,
    },
    // 4 long flows over a 3-hop chain (2 ms/hop) with 2 CUBIC-window
    // cross flows per hop: 10 flows, 3 queues, every long-flow packet
    // enqueued/serialized/propagated at each hop.
    Case {
        name: "parkinglot_1s_3hops_100mbps",
        flows: 4,
        window_bdp: 1.0 / 3.0,
        secs: 1.0,
        workload: None,
        parking_lot: Some((3, 2)),
        floor_events_per_sec: 3_000_000.0,
    },
];

fn build_sim(case: &Case) -> Simulator {
    let rate = Rate::from_mbps(100.0);
    let rtt = SimDuration::from_millis(20);
    let buf = bbrdom_netsim::units::buffer_bytes(rate, rtt, 2.0);
    let mut cfg = SimConfig::new(rate, buf, SimDuration::from_secs_f64(case.secs));
    if let Some((rate_per_sec, bytes)) = case.workload {
        cfg = cfg.with_workload(WorkloadConfig::new(
            ArrivalProcess::Poisson { rate_per_sec },
            SizeDist::Fixed { bytes },
            rtt,
            11,
        ));
    }
    let mut cross = 0;
    if let Some((hops, cross_per_hop)) = case.parking_lot {
        let mut topo = Topology::parking_lot(hops, rate, SimDuration::from_millis(2), buf);
        // Long flows ride route 0 (the whole chain); cross flows route
        // 1 + h (hop h only).
        topo.flow_routes = (0..case.flows as u32)
            .map(|_| 0)
            .chain((0..hops).flat_map(|h| std::iter::repeat_n(1 + h, cross_per_hop)))
            .collect();
        cross = hops as usize * cross_per_hop;
        cfg = cfg.with_topology(topo);
    }
    let mut sim = Simulator::try_new(cfg).expect("valid bench config");
    if case.workload.is_some() {
        sim.set_workload_cc(Box::new(|_| Box::new(FixedWindow::new(8 * MSS))));
    }
    let bdp = rate.bdp_bytes(rtt);
    let window = ((bdp as f64 * case.window_bdp) as u64).max(MSS);
    for _ in 0..case.flows + cross {
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(window)), rtt));
    }
    sim
}

struct Measurement {
    events: u64,
    spawned: u64,
    median: Duration,
    min: Duration,
}

/// Time `samples` full runs of one case (after one untimed warm-up).
fn measure(case: &Case, samples: usize) -> Measurement {
    let warmup = build_sim(case).run();
    let (events, spawned) = (warmup.events_processed, warmup.workload_spawned);
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let mut sim = build_sim(case);
            let start = Instant::now();
            black_box(sim.run());
            start.elapsed()
        })
        .collect();
    times.sort();
    Measurement {
        events,
        spawned,
        median: times[times.len() / 2],
        min: times[0],
    }
}

fn events_per_sec(m: &Measurement) -> f64 {
    m.events as f64 / m.median.as_secs_f64()
}

fn main() {
    let samples: usize = std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);

    let gate_floors = std::env::var("BENCH_NO_FLOOR").map_or(true, |v| v != "1");

    let mut results = Vec::new();
    let mut floor_failures = Vec::new();
    for case in CASES {
        let m = measure(case, samples);
        println!(
            "netsim/{:<32} median {:>12.3?}  min {:>12.3?}  {:>12.0} events/s  ({} events)",
            case.name,
            m.median,
            m.min,
            events_per_sec(&m),
            m.events,
        );
        if case.workload.is_some() {
            assert!(
                m.spawned >= 10_000,
                "{}: expected >= 10k cumulative workload flows, spawned {}",
                case.name,
                m.spawned,
            );
        }
        if case.floor_events_per_sec > 0.0 && events_per_sec(&m) < case.floor_events_per_sec {
            floor_failures.push(format!(
                "{}: {:.0} events/s below pinned floor {:.0}",
                case.name,
                events_per_sec(&m),
                case.floor_events_per_sec,
            ));
        }
        results.push((case, m));
    }

    // Repo root: two levels up from this crate's manifest.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netsim.json");
    let mut json = String::from("{\n  \"schema\": \"netsim-perf-v2\",\n  \"cases\": [\n");
    for (i, (case, m)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"flows\": {}, \"workload_flows\": {}, \"events\": {}, \
             \"median_secs\": {:.6}, \"min_secs\": {:.6}, \"events_per_sec\": {:.0}, \
             \"floor_events_per_sec\": {:.0}}}{}\n",
            case.name,
            case.flows,
            m.spawned,
            m.events,
            m.median.as_secs_f64(),
            m.min.as_secs_f64(),
            events_per_sec(m),
            case.floor_events_per_sec,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out, json).expect("write BENCH_netsim.json");
    println!("wrote {out}");

    if !floor_failures.is_empty() {
        for f in &floor_failures {
            eprintln!("FLOOR REGRESSION: {f}");
        }
        if gate_floors {
            std::process::exit(1);
        }
        eprintln!("(BENCH_NO_FLOOR=1: reporting only, not gating)");
    }
}
