//! Bench for Fig. 5: per-distribution model bounds (diminishing returns
//! curves) for the paper's four panels.

use bbrdom_core::model::multi_flow::{MultiFlowModel, SyncMode};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn curves() -> f64 {
    let mut acc = 0.0;
    for (n, buf) in [(10u32, 3.0), (20, 3.0), (10, 10.0), (20, 10.0)] {
        for k in 1..=n {
            let m = MultiFlowModel::from_paper_units(100.0, 40.0, buf, n - k, k);
            for mode in SyncMode::BOTH {
                acc += m.solve(mode).unwrap().bbr_per_flow;
            }
        }
    }
    acc
}

fn bench(c: &mut Criterion) {
    c.bench_function("fig05/model_bounds_4panels", |b| {
        b.iter(|| black_box(curves()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
