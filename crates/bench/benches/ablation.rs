//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the model's in-flight gain assumption (paper §5: "2 BDP in flight"
//!   vs the refined 1–2 BDP drift) — sweep the gain and quantify how the
//!   predicted BBR share moves;
//! * closed-form quadratic vs bisection root finding for Eq. (18);
//! * CUBIC with and without HyStart against a BBR flow (the slow-start
//!   calibration finding in DESIGN.md §7).

use bbrdom_core::model::two_flow::{solve_with_gamma, solve_with_gamma_and_gain};
use bbrdom_core::model::LinkParams;
use bbrdom_netsim::{FlowConfig, Rate, SimConfig, SimDuration, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// BBR-vs-CUBIC slice with HyStart toggled; returns CUBIC's throughput.
fn hystart_slice(hystart: bool) -> f64 {
    let rate = Rate::from_mbps(20.0);
    let rtt = SimDuration::from_millis(20);
    let buf = bbrdom_netsim::units::buffer_bytes(rate, rtt, 2.0);
    let mut sim = Simulator::new(SimConfig::new(rate, buf, SimDuration::from_secs_f64(5.0)));
    let cubic = if hystart {
        bbrdom_cca::Cubic::new()
    } else {
        bbrdom_cca::Cubic::without_hystart()
    };
    sim.add_flow(FlowConfig::new(Box::new(cubic), rtt));
    sim.add_flow(FlowConfig::new(Box::new(bbrdom_cca::Bbr::new(0)), rtt));
    let r = sim.run();
    r.flows[0].throughput_mbps()
}

fn gain_sweep() -> f64 {
    let mut acc = 0.0;
    for bdp in [2.0, 5.0, 10.0, 20.0, 50.0] {
        let l = LinkParams::from_paper_units(50.0, 40.0, bdp);
        for gain in [1.2, 1.4, 1.6, 1.8, 2.0] {
            acc += solve_with_gamma_and_gain(&l, 0.7, gain)
                .unwrap()
                .bbr_bandwidth;
        }
    }
    acc
}

/// Bisection reference for Eq. (18), as used by the model's tests.
fn bisect(l: &LinkParams, gamma: f64) -> f64 {
    let d = l.bdp();
    let b = l.buffer;
    let s = (b - d) / 2.0;
    let f = |bb: f64| s + s / (s + bb) * d - gamma * (b - bb + (b - bb) / b * d);
    let (mut lo, mut hi) = (1.0, b);
    let f_lo = f(lo);
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if (f(mid) > 0.0) == (f_lo > 0.0) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.bench_function("model_gain_sweep_25pts", |b| {
        b.iter(|| black_box(gain_sweep()))
    });
    let l = LinkParams::from_paper_units(50.0, 40.0, 10.0);
    g.bench_function("eq18_closed_form", |b| {
        b.iter(|| black_box(solve_with_gamma(&l, 0.7).unwrap().bbr_buffer))
    });
    g.bench_function("eq18_bisection_100iters", |b| {
        b.iter(|| black_box(bisect(&l, 0.7)))
    });
    g.sample_size(10);
    g.bench_function("cubic_with_hystart_vs_bbr", |b| {
        b.iter(|| black_box(hystart_slice(true)))
    });
    g.bench_function("cubic_without_hystart_vs_bbr", |b| {
        b.iter(|| black_box(hystart_slice(false)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
