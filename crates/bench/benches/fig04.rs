//! Bench for Fig. 4: the multi-flow predicted region (both CUBIC
//! synchronization bounds) over the buffer sweep.

use bbrdom_core::model::multi_flow::MultiFlowModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn region_sweep(n_cubic: u32, n_bbr: u32) -> f64 {
    let mut acc = 0.0;
    for i in 1..=30 {
        let m = MultiFlowModel::from_paper_units(100.0, 40.0, i as f64, n_cubic, n_bbr);
        let (sync, desync) = m.predicted_region().unwrap();
        acc += sync.bbr_per_flow + desync.bbr_per_flow;
    }
    acc
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04");
    g.bench_function("region_5v5", |b| b.iter(|| black_box(region_sweep(5, 5))));
    g.bench_function("region_10v10", |b| {
        b.iter(|| black_box(region_sweep(10, 10)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
