//! Result-store performance: store-hit figure assembly vs warm
//! full-report parsing.
//!
//! Not a paper figure — this pins the indexed result store's perf
//! claim on a fig 9/11-shaped grid: once the index is populated,
//! assembling the whole grid from store hits (no simulation, no
//! full-report deserialization) must be at least 10x faster than the
//! old warm path that re-parses every cached `SimReport` from disk.
//! Bit-identity between the two paths is asserted inline, as is the
//! zero-simulation / zero-parse invariant on the store engine.
//!
//! Besides the stdout report, the run writes `BENCH_store.json` at the
//! repo root (format documented in `EXPERIMENTS.md`). The index-load
//! cost is reported separately (`store_open_secs`) because it is paid
//! once per process, not per cell. Set `BENCH_STORE_CELLS` to resize
//! the grid (default 1000) and `BENCH_NO_FLOOR=1` to report without
//! gating (tiny smoke grids amortize the parse overhead differently).

use bbrdom_cca::CcaKind;
use bbrdom_experiments::engine::{Engine, EngineConfig};
use bbrdom_experiments::Scenario;
use std::path::Path;
use std::time::{Duration, Instant};

const SPEEDUP_FLOOR: f64 = 10.0;

/// A ~1k-cell figure-shaped grid: short trials, distinct seeds, a few
/// capacity rows — the workload a fig 9/11 assembly fans out after a
/// sweep has already filled the cache.
fn grid(cells: usize) -> Vec<Scenario> {
    (0..cells)
        .map(|k| {
            Scenario::versus(
                10.0 + (k % 16) as f64,
                20.0,
                1.0,
                1,
                CcaKind::Bbr,
                1,
                0.3,
                100_000 + k as u64,
            )
        })
        .collect()
}

fn engine(cache: &Path, jobs: usize, store: bool) -> Engine {
    Engine::new(EngineConfig {
        jobs,
        disk_cache: Some(cache.to_path_buf()),
        memory_cache: false,
        supervise: None,
        result_store: store,
    })
}

fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

fn fingerprint(results: &[bbrdom_experiments::TrialResult]) -> String {
    results
        .iter()
        .map(|r| r.to_json_value().to_json())
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let cells = std::env::var("BENCH_STORE_CELLS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000usize)
        .max(1);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let jobs = cores.min(8);
    let scenarios = grid(cells);

    let cache = std::env::temp_dir().join(format!("bbrdom-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);

    // Cold populate: simulate every cell once, writing cache + index.
    let populate_engine = engine(&cache, jobs, true);
    let (populated, cold) = time(|| populate_engine.run_all(&scenarios));
    assert_eq!(populate_engine.stats().simulated, cells as u64);

    // Warm parse baseline: the pre-store path, re-deserializing every
    // full SimReport. One untimed pass first so both contenders run
    // against a hot page cache.
    engine(&cache, jobs, false).run_all(&scenarios);
    let parse_engine = engine(&cache, jobs, false);
    let (from_parse, warm_parse) = time(|| parse_engine.run_all(&scenarios));
    assert_eq!(parse_engine.stats().disk_hits, cells as u64);

    // Store path: index load (once per process, timed separately),
    // then pure metric-lookup assembly.
    let store_engine = engine(&cache, jobs, true);
    let (_, store_open) = time(|| store_engine.store().expect("store configured").len());
    let (from_store, store_assembly) = time(|| store_engine.run_all(&scenarios));
    let stats = store_engine.stats();
    assert_eq!(stats.simulated, 0, "warm store must simulate nothing");
    assert_eq!(stats.disk_hits, 0, "warm store must parse no full reports");
    assert_eq!(stats.store_hits, cells as u64);

    let bit_identical = fingerprint(&populated) == fingerprint(&from_store)
        && fingerprint(&from_parse) == fingerprint(&from_store);
    assert!(
        bit_identical,
        "store-served results diverged from the simulated/parsed paths"
    );
    let _ = std::fs::remove_dir_all(&cache);

    let speedup = warm_parse.as_secs_f64() / store_assembly.as_secs_f64().max(1e-9);
    let gated = std::env::var("BENCH_NO_FLOOR").map_or(true, |v| v != "1");
    println!(
        "store/{cells} cells: cold {cold:>9.3?}  warm-parse {warm_parse:>9.3?}  \
         store-open {store_open:>9.3?} + assembly {store_assembly:>9.3?} ({speedup:.1}x)  \
         [{cores} cores, jobs={jobs}, bit-identical: {bit_identical}]",
    );
    if gated {
        assert!(
            speedup >= SPEEDUP_FLOOR,
            "store-hit assembly is {speedup:.1}x vs warm parse, need >= {SPEEDUP_FLOOR}x \
             (BENCH_NO_FLOOR=1 to report without gating)"
        );
    }

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    let json = format!(
        "{{\n  \"schema\": \"store-perf-v1\",\n  \"cores\": {cores},\n  \"jobs\": {jobs},\n  \
         \"cells\": {cells},\n  \"cold_populate_secs\": {:.6},\n  \
         \"warm_parse_secs\": {:.6},\n  \"store_open_secs\": {:.6},\n  \
         \"store_assembly_secs\": {:.6},\n  \"speedup\": {speedup:.1},\n  \
         \"speedup_floor\": {SPEEDUP_FLOOR},\n  \"floor_gated\": {gated},\n  \
         \"bit_identical\": {bit_identical}\n}}\n",
        cold.as_secs_f64(),
        warm_parse.as_secs_f64(),
        store_open.as_secs_f64(),
        store_assembly.as_secs_f64(),
    );
    std::fs::write(out, json).expect("write BENCH_store.json");
    println!("wrote {out}");
}
