//! Bench for Fig. 10: multi-group (multi-RTT) Nash-equilibrium
//! enumeration over the full (n+1)^3 state space with synthetic payoffs
//! (the game-theory machinery; the simulation side is the repro binary).

use bbrdom_core::game::multigroup::{GroupPayoffs, MultiGroupGame};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn enumerate(n: u32) -> usize {
    let rtts = [10.0, 30.0, 50.0];
    let game = MultiGroupGame::new(vec![n; 3], move |state: &[u32]| {
        let total: u32 = state.iter().sum();
        GroupPayoffs {
            bbr: rtts
                .iter()
                .map(|r| 10.0 + r / 10.0 - 1.2 * total as f64)
                .collect(),
            cubic: rtts
                .iter()
                .map(|r| 10.0 - r / 25.0 + 0.4 * total as f64)
                .collect(),
        }
    });
    game.nash_equilibria().len()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.bench_function("ne_enumeration_11x11x11", |b| {
        b.iter(|| black_box(enumerate(10)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
