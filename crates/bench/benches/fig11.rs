//! Bench for Fig. 11: BBRv2-vs-CUBIC simulation slice (the NE search for
//! BBRv2 reuses Fig. 9's machinery with this matchup inside).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("sim_1v1_bbrv2", |b| {
        b.iter(|| {
            black_box(bbrdom_bench::tiny_sim(
                20.0,
                2.0,
                bbrdom_cca::CcaKind::BbrV2,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
