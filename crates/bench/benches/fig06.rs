//! Bench for Fig. 6: the Nash-equilibrium crossing — distribution curve
//! plus the Eq. (25) bisection solve.

use bbrdom_core::model::multi_flow::SyncMode;
use bbrdom_core::model::nash::NashPredictor;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let p = NashPredictor::from_paper_units(100.0, 40.0, 3.0, 10);
    let mut g = c.benchmark_group("fig06");
    g.bench_function("distribution_curve", |b| {
        b.iter(|| black_box(p.distribution_curve(SyncMode::Synchronized).unwrap()))
    });
    g.bench_function("ne_crossing_solve", |b| {
        b.iter(|| black_box(p.predict(SyncMode::Synchronized).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
