//! Bench for Fig. 9: the Nash-region prediction over the buffer sweep
//! (the model side of all six panels) and one empirical NE search.

use bbrdom_cca::CcaKind;
use bbrdom_core::model::nash::nash_region_over_buffers;
use bbrdom_experiments::payoff::{default_epsilon_mbps, measure_payoffs};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Start at 1 BDP: the model's validity floor (§2.3 assumptions).
    let buffers: Vec<f64> = (2..=100).map(|i| i as f64 * 0.5).collect();
    let mut g = c.benchmark_group("fig09");
    g.bench_function("nash_region_50flows_100pts", |b| {
        b.iter(|| black_box(nash_region_over_buffers(100.0, 40.0, &buffers, 50).unwrap()))
    });
    g.sample_size(10);
    let profile = bbrdom_bench::bench_profile();
    g.bench_function("empirical_ne_search_4flows", |b| {
        b.iter(|| {
            let m = measure_payoffs(20.0, 20.0, 3.0, 4, CcaKind::Bbr, &profile, 11);
            black_box(m.observed_ne_cubic_counts(default_epsilon_mbps(20.0, 4)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
