//! Bench for Fig. 12: ultra-deep buffers — the model solve out to
//! 250 BDP and one deep-buffer simulation slice.

use bbrdom_core::model::two_flow::TwoFlowModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn deep_sweep() -> f64 {
    let mut acc = 0.0;
    for b in [1.0, 5.0, 20.0, 60.0, 100.0, 150.0, 200.0, 250.0] {
        acc += TwoFlowModel::from_paper_units(50.0, 40.0, b)
            .solve()
            .unwrap()
            .bbr_mbps();
    }
    acc
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.bench_function("model_ultra_deep_sweep", |b| {
        b.iter(|| black_box(deep_sweep()))
    });
    g.sample_size(10);
    g.bench_function("sim_deep_buffer_point", |b| {
        b.iter(|| black_box(bbrdom_bench::tiny_sim(10.0, 30.0, bbrdom_cca::CcaKind::Bbr)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
