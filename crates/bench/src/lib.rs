//! Shared helpers for the per-figure Criterion benchmarks.
//!
//! Each `benches/figNN.rs` regenerates (a scaled-down slice of) the data
//! behind one figure of the paper, so `cargo bench` both times the
//! machinery and re-verifies that every figure's pipeline still runs.
//! The full-size figure data comes from the `repro` binary
//! (`bbrdom-experiments`); benches use the smoke profile to stay fast.

use bbrdom_experiments::Profile;

/// The profile benches run with: seconds-scale sims.
pub fn bench_profile() -> Profile {
    Profile::smoke()
}

/// A tiny two-flow simulation used by several benches, returning the
/// challenger's measured throughput in Mbps.
pub fn tiny_sim(mbps: f64, buffer_bdp: f64, challenger: bbrdom_cca::CcaKind) -> f64 {
    use bbrdom_experiments::Scenario;
    let s = Scenario::versus(mbps, 20.0, buffer_bdp, 1, challenger, 1, 4.0, 42);
    s.run().mean_throughput_of(challenger.name()).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sim_produces_throughput() {
        let t = tiny_sim(10.0, 2.0, bbrdom_cca::CcaKind::Bbr);
        assert!(t > 0.0 && t < 11.0);
    }

    #[test]
    fn bench_profile_is_smoke_sized() {
        assert!(bench_profile().duration_secs <= 10.0);
    }
}
