//! Name → algorithm factory, so experiment configs and the `repro` CLI
//! can select algorithms by string.

use crate::{Bbr, BbrV2, Copa, Cubic, NewReno, Vegas, Vivace};
use bbrdom_netsim::cc::CongestionControl;
use std::fmt;
use std::str::FromStr;

/// Every congestion-control algorithm in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcaKind {
    Cubic,
    NewReno,
    Bbr,
    BbrV2,
    Copa,
    Vivace,
    Vegas,
}

impl CcaKind {
    /// All algorithms, in a stable order.
    pub const ALL: [CcaKind; 7] = [
        CcaKind::Cubic,
        CcaKind::NewReno,
        CcaKind::Bbr,
        CcaKind::BbrV2,
        CcaKind::Copa,
        CcaKind::Vivace,
        CcaKind::Vegas,
    ];

    /// The non-CUBIC algorithms the paper evaluates in Fig. 7.
    pub const CHALLENGERS: [CcaKind; 4] =
        [CcaKind::Bbr, CcaKind::BbrV2, CcaKind::Copa, CcaKind::Vivace];

    /// Canonical lower-case name (matches each implementation's
    /// [`CongestionControl::name`]).
    pub fn name(self) -> &'static str {
        match self {
            CcaKind::Cubic => "cubic",
            CcaKind::NewReno => "newreno",
            CcaKind::Bbr => "bbr",
            CcaKind::BbrV2 => "bbrv2",
            CcaKind::Copa => "copa",
            CcaKind::Vivace => "vivace",
            CcaKind::Vegas => "vegas",
        }
    }

    /// Build a fresh instance. `seed` de-synchronizes per-flow phases
    /// (BBR's ProbeBW start phase, BBRv2's probe spacing); pass the flow
    /// index or a trial-derived value.
    pub fn build(self, seed: u64) -> Box<dyn CongestionControl> {
        match self {
            CcaKind::Cubic => Box::new(Cubic::new()),
            CcaKind::NewReno => Box::new(NewReno::new()),
            CcaKind::Bbr => Box::new(Bbr::new(seed)),
            CcaKind::BbrV2 => Box::new(BbrV2::new(seed)),
            CcaKind::Copa => Box::new(Copa::new()),
            CcaKind::Vivace => Box::new(Vivace::new(seed)),
            CcaKind::Vegas => Box::new(Vegas::new()),
        }
    }

    /// Whether the algorithm is loss-based (backs off on packet loss as
    /// its primary control signal).
    pub fn is_loss_based(self) -> bool {
        matches!(self, CcaKind::Cubic | CcaKind::NewReno)
    }
}

impl fmt::Display for CcaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for CcaKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cubic" => Ok(CcaKind::Cubic),
            "newreno" | "reno" => Ok(CcaKind::NewReno),
            "bbr" | "bbrv1" | "bbr1" => Ok(CcaKind::Bbr),
            "bbrv2" | "bbr2" => Ok(CcaKind::BbrV2),
            "copa" => Ok(CcaKind::Copa),
            "vivace" | "pcc" | "pcc-vivace" => Ok(CcaKind::Vivace),
            "vegas" => Ok(CcaKind::Vegas),
            other => Err(format!(
                "unknown congestion control algorithm '{other}' \
                 (expected one of: cubic, newreno, bbr, bbrv2, copa, vivace, vegas)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_fromstr() {
        for kind in CcaKind::ALL {
            let parsed: CcaKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
    }

    #[test]
    fn aliases_parse() {
        assert_eq!("BBRv1".parse::<CcaKind>().unwrap(), CcaKind::Bbr);
        assert_eq!("pcc-vivace".parse::<CcaKind>().unwrap(), CcaKind::Vivace);
        assert_eq!("reno".parse::<CcaKind>().unwrap(), CcaKind::NewReno);
    }

    #[test]
    fn unknown_name_is_an_error() {
        assert!("quic-magic".parse::<CcaKind>().is_err());
    }

    #[test]
    fn built_instance_reports_matching_name() {
        for kind in CcaKind::ALL {
            assert_eq!(kind.build(0).name(), kind.name());
        }
    }

    #[test]
    fn loss_based_classification() {
        assert!(CcaKind::Cubic.is_loss_based());
        assert!(!CcaKind::Bbr.is_loss_based());
        assert!(!CcaKind::Copa.is_loss_based());
    }
}
