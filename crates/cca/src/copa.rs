//! Copa (Arun & Balakrishnan, NSDI '18).
//!
//! Copa drives the congestion window toward the target rate
//! `λ_target = 1 / (δ · d_q)` where `d_q = RTT_standing − RTT_min` is the
//! measured queuing delay. Each ACK moves `cwnd` by `v / (δ · cwnd)` MSS
//! toward the target; the velocity `v` doubles after three consecutive
//! RTTs moving in the same direction.
//!
//! Both Copa modes are implemented:
//!
//! * **Default mode** (δ = 0.5) while the queue is observed to empty
//!   regularly (the flow has the bottleneck to itself, or shares it with
//!   other Copa-like flows);
//! * **TCP-competitive mode** when the queue has not been nearly empty
//!   for 5 RTTs (a buffer-filler like CUBIC is present): `1/δ` follows
//!   AIMD — +1 per loss-free RTT, halved on loss — making Copa roughly
//!   as aggressive as AIMD TCP while competing.
//!
//! Even so, Copa remains *below fair share* against CUBIC at every split
//! (the IMC paper's Fig. 7 finding, reproduced in the tests): its
//! delay-sensing core concedes the deep standing queue CUBIC builds.
//! On loss Copa additionally halves its window once per RTT (its packet-
//! loss guard for severe overload).

use crate::util::{RoundCounter, WindowedMax, WindowedMin};
use bbrdom_netsim::cc::{AckSample, CongestionControl, FlowView};
use bbrdom_netsim::time::SimTime;

/// Copa's δ in default mode.
const DELTA_DEFAULT: f64 = 0.5;
/// Smallest δ the competitive mode may reach (1/δ ≤ 50).
const DELTA_MIN: f64 = 0.02;
/// Loss-free RTTs without a near-empty queue before switching to
/// TCP-competitive mode (the Copa paper's detection horizon).
const NEARLY_EMPTY_HORIZON_ROUNDS: u32 = 5;
/// Minimum window, MSS.
const MIN_CWND_MSS: f64 = 2.0;
/// Initial window, MSS.
const INIT_CWND_MSS: f64 = 10.0;
/// RTT_min filter window, nanoseconds (10 s as in the Copa paper).
const RTT_MIN_WINDOW_NS: u64 = 10_000_000_000;

/// Copa congestion control (default mode).
#[derive(Debug, Clone)]
pub struct Copa {
    mss: f64,
    /// Window in MSS (fractional).
    cwnd: f64,
    /// Velocity parameter.
    v: f64,
    /// Direction of the last window move: +1 up, −1 down, 0 unknown.
    direction: i8,
    /// RTTs the direction has persisted.
    same_direction_rounds: u32,
    /// cwnd at the start of the current RTT (to detect actual direction).
    cwnd_at_round_start: f64,
    rounds: RoundCounter,
    /// Long-window minimum RTT (propagation estimate), ns ticks.
    rtt_min: WindowedMin,
    /// "Standing" RTT: min over a short recent window, ns ticks.
    rtt_standing: WindowedMin,
    /// Recent maximum RTT (for the nearly-empty threshold), ns ticks.
    rtt_max: WindowedMax,
    /// Limits loss back-off to once per RTT.
    last_loss_round: u64,
    /// Rounds since the queue was last observed nearly empty.
    rounds_since_nearly_empty: u32,
    /// Current δ: `DELTA_DEFAULT` in default mode, AIMD-driven below it
    /// in TCP-competitive mode.
    delta: f64,
    /// Round of the last loss (competitive-mode AIMD input).
    loss_in_round: bool,
}

impl Copa {
    pub fn new() -> Self {
        Copa {
            mss: 1500.0,
            cwnd: INIT_CWND_MSS,
            v: 1.0,
            direction: 0,
            same_direction_rounds: 0,
            cwnd_at_round_start: INIT_CWND_MSS,
            rounds: RoundCounter::new(),
            rtt_min: WindowedMin::new(RTT_MIN_WINDOW_NS),
            // ~100 ms standing window; refreshed quickly, robust to noise.
            rtt_standing: WindowedMin::new(100_000_000),
            // ~2 s max window for the nearly-empty threshold.
            rtt_max: WindowedMax::new(2_000_000_000),
            last_loss_round: 0,
            rounds_since_nearly_empty: 0,
            delta: DELTA_DEFAULT,
            loss_in_round: false,
        }
    }

    /// Current operating δ (0.5 in default mode, smaller when competing
    /// with buffer-fillers).
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// True when Copa is in TCP-competitive mode.
    pub fn is_competitive(&self) -> bool {
        self.rounds_since_nearly_empty >= NEARLY_EMPTY_HORIZON_ROUNDS
    }

    /// Per-round mode detection and competitive-mode AIMD on 1/δ.
    fn update_mode(&mut self) {
        let (standing, min, max) = match (
            self.rtt_standing.get(),
            self.rtt_min.get(),
            self.rtt_max.get(),
        ) {
            (Some(s), Some(mn), Some(mx)) => (s, mn, mx),
            _ => return,
        };
        let dq = (standing - min).max(0.0);
        let spread = (max - min).max(0.0);
        let nearly_empty = spread < 1e-9 || dq < 0.1 * spread;
        if nearly_empty {
            self.rounds_since_nearly_empty = 0;
        } else {
            self.rounds_since_nearly_empty = self.rounds_since_nearly_empty.saturating_add(1);
        }
        if self.is_competitive() {
            let mut inv = 1.0 / self.delta;
            if self.loss_in_round {
                inv = (inv / 2.0).max(1.0 / DELTA_DEFAULT);
            } else {
                inv += 1.0;
            }
            self.delta = (1.0 / inv).clamp(DELTA_MIN, DELTA_DEFAULT);
        } else {
            self.delta = DELTA_DEFAULT;
        }
        self.loss_in_round = false;
    }

    pub fn cwnd_mss(&self) -> f64 {
        self.cwnd
    }

    /// Current queuing-delay estimate in seconds.
    pub fn queuing_delay(&self) -> Option<f64> {
        let standing = self.rtt_standing.get()?;
        let min = self.rtt_min.get()?;
        Some((standing - min).max(0.0))
    }

    fn update_velocity(&mut self) {
        let dir_now: i8 = if self.cwnd > self.cwnd_at_round_start {
            1
        } else {
            -1
        };
        if dir_now == self.direction {
            self.same_direction_rounds += 1;
            if self.same_direction_rounds >= 3 {
                self.v *= 2.0;
            }
        } else {
            self.v = 1.0;
            self.same_direction_rounds = 0;
            self.direction = dir_now;
        }
        // Velocity is bounded so a direction flip recovers quickly.
        self.v = self.v.min(self.cwnd.max(1.0));
        self.cwnd_at_round_start = self.cwnd;
    }
}

impl Default for Copa {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Copa {
    fn name(&self) -> &'static str {
        "copa"
    }

    fn on_ack(&mut self, ack: &AckSample, view: &FlowView) {
        self.mss = view.mss as f64;
        self.rounds
            .on_ack(ack.packet_delivered_at_send, ack.delivered_total);
        if let Some(rtt) = ack.rtt {
            let r = rtt.as_secs_f64();
            let tick = ack.now.as_nanos();
            self.rtt_min.update(tick, r);
            self.rtt_standing.update(tick, r);
            self.rtt_max.update(tick, r);
        }
        if self.rounds.round_start() {
            self.update_velocity();
            self.update_mode();
        }
        let (standing, min) = match (self.rtt_standing.get(), self.rtt_min.get()) {
            (Some(s), Some(m)) => (s, m),
            _ => {
                self.cwnd += 1.0 / self.cwnd; // no samples yet: gentle growth
                return;
            }
        };
        let dq = (standing - min).max(0.0);
        let step = self.v / (self.delta * self.cwnd);
        if dq <= 1e-9 {
            // Queue empty: below target by definition; increase.
            self.cwnd += step;
        } else {
            let target_rate = self.mss / (self.delta * dq); // bytes/sec
            let current_rate = self.cwnd * self.mss / standing;
            if current_rate <= target_rate {
                self.cwnd += step;
            } else {
                self.cwnd -= step;
            }
        }
        self.cwnd = self.cwnd.max(MIN_CWND_MSS);
    }

    fn on_congestion_event(&mut self, _now: SimTime, _view: &FlowView) {
        self.loss_in_round = true;
        // Loss guard: halve at most once per RTT.
        if self.rounds.rounds() > self.last_loss_round {
            self.last_loss_round = self.rounds.rounds();
            self.cwnd = (self.cwnd / 2.0).max(MIN_CWND_MSS);
            self.v = 1.0;
            self.same_direction_rounds = 0;
            self.direction = -1;
        }
    }

    fn on_rto(&mut self, _now: SimTime, _view: &FlowView) {
        self.cwnd = MIN_CWND_MSS;
        self.v = 1.0;
        self.same_direction_rounds = 0;
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd * self.mss).round() as u64
    }

    fn pacing_rate(&self) -> Option<f64> {
        // Copa paces at 2·cwnd/RTT_standing to smooth bursts.
        let standing = self.rtt_standing.get()?;
        Some(2.0 * self.cwnd * self.mss / standing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_dumbbell;

    #[test]
    fn copa_alone_uses_link_with_low_delay() {
        let report = run_dumbbell(20.0, 40, 8.0, 30.0, vec![Box::new(Copa::new())]);
        let tp = report.flows[0].throughput_mbps();
        assert!(tp > 15.0, "copa throughput={tp}");
        // δ=0.5 targets only a few packets of queue — far below 8 BDP.
        let bdp = 20.0e6 / 8.0 * 0.04;
        assert!(
            report.queue.avg_occupancy_bytes < 0.5 * bdp,
            "queue={}",
            report.queue.avg_occupancy_bytes
        );
    }

    #[test]
    fn copa_loses_to_cubic() {
        // Fig. 7 of the paper: Copa stays below fair share against CUBIC.
        let report = run_dumbbell(
            50.0,
            40,
            2.0,
            60.0,
            vec![Box::new(Copa::new()), Box::new(crate::cubic::Cubic::new())],
        );
        let copa = report.flows[0].throughput_mbps();
        let cubic = report.flows[1].throughput_mbps();
        assert!(copa < cubic, "copa={copa} cubic={cubic}");
    }

    #[test]
    fn velocity_doubles_after_three_consistent_rounds() {
        let mut c = Copa::new();
        c.direction = 1;
        for _ in 0..3 {
            c.cwnd += 1.0;
            c.update_velocity();
        }
        assert!(c.v >= 2.0, "v={}", c.v);
    }

    #[test]
    fn loss_halves_at_most_once_per_round() {
        let mut c = Copa::new();
        c.cwnd = 64.0;
        // Advance one round so rounds() > last_loss_round.
        c.rounds.on_ack(0, 1500);
        let v = FlowView {
            mss: 1500,
            srtt: None,
            min_rtt: None,
            inflight_bytes: 0,
            delivered_bytes: 0,
            in_recovery: false,
        };
        c.on_congestion_event(SimTime::ZERO, &v);
        assert!((c.cwnd_mss() - 32.0).abs() < 1e-9);
        // Second loss in the same round: no further cut.
        c.on_congestion_event(SimTime::ZERO, &v);
        assert!((c.cwnd_mss() - 32.0).abs() < 1e-9);
    }
}
