//! TCP NewReno (RFC 5681/6582): the classic AIMD baseline.
//!
//! Included because the paper's closing discussion contrasts the
//! CUBIC-vs-NewReno transition with the BBR-vs-CUBIC one, and because it
//! is the simplest loss-based reference against which to sanity-check the
//! simulator (AIMD sawtooth, `β = 0.5`).

use bbrdom_netsim::cc::{AckSample, CongestionControl, FlowView};
use bbrdom_netsim::time::SimTime;

const INIT_CWND: f64 = 10.0;
const MIN_CWND: f64 = 2.0;
const BETA: f64 = 0.5;

/// TCP NewReno congestion control.
#[derive(Debug, Clone)]
pub struct NewReno {
    mss: f64,
    /// Congestion window in MSS.
    cwnd: f64,
    ssthresh: f64,
}

impl NewReno {
    pub fn new() -> Self {
        NewReno {
            mss: 1500.0,
            cwnd: INIT_CWND,
            ssthresh: f64::INFINITY,
        }
    }

    pub fn cwnd_mss(&self) -> f64 {
        self.cwnd
    }
}

impl Default for NewReno {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for NewReno {
    fn name(&self) -> &'static str {
        "newreno"
    }

    fn on_ack(&mut self, ack: &AckSample, view: &FlowView) {
        self.mss = view.mss as f64;
        if view.in_recovery {
            return;
        }
        let acked_mss = ack.acked_bytes as f64 / self.mss;
        if self.cwnd < self.ssthresh {
            self.cwnd += acked_mss;
        } else {
            self.cwnd += acked_mss / self.cwnd;
        }
    }

    fn on_congestion_event(&mut self, _now: SimTime, _view: &FlowView) {
        self.cwnd = (self.cwnd * BETA).max(MIN_CWND);
        self.ssthresh = self.cwnd;
    }

    fn on_rto(&mut self, _now: SimTime, _view: &FlowView) {
        self.ssthresh = (self.cwnd * BETA).max(MIN_CWND);
        self.cwnd = 1.0;
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd * self.mss).round() as u64
    }

    fn pacing_rate(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_dumbbell;
    use bbrdom_netsim::time::SimDuration;

    fn view(in_recovery: bool) -> FlowView {
        FlowView {
            mss: 1500,
            srtt: Some(SimDuration::from_millis(40)),
            min_rtt: Some(SimDuration::from_millis(40)),
            inflight_bytes: 0,
            delivered_bytes: 0,
            in_recovery,
        }
    }

    fn ack(bytes: u64) -> AckSample {
        AckSample {
            now: SimTime::ZERO,
            acked_bytes: bytes,
            rtt: None,
            delivery_rate: None,
            delivered_total: 0,
            packet_delivered_at_send: 0,
            inflight_bytes: 0,
            newly_lost_bytes: 0,
        }
    }

    #[test]
    fn additive_increase_one_mss_per_rtt() {
        let mut r = NewReno::new();
        r.ssthresh = 5.0; // force congestion avoidance
        r.cwnd = 10.0;
        for _ in 0..10 {
            r.on_ack(&ack(1500), &view(false));
        }
        // One cwnd's worth of ACKs grows the window by ~1 MSS.
        assert!((r.cwnd_mss() - 11.0).abs() < 0.1, "cwnd={}", r.cwnd_mss());
    }

    #[test]
    fn multiplicative_decrease_halves() {
        let mut r = NewReno::new();
        r.cwnd = 64.0;
        r.on_congestion_event(SimTime::ZERO, &view(false));
        assert!((r.cwnd_mss() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn reno_fills_link() {
        let report = run_dumbbell(10.0, 40, 2.0, 30.0, vec![Box::new(NewReno::new())]);
        assert!(report.flows[0].throughput_mbps() > 9.0);
    }

    #[test]
    fn cubic_beats_reno_on_high_bdp_path() {
        // The motivation for CUBIC (paper §5 "Taming the Zoo"): on a high
        // BDP path CUBIC recovers from back-off faster than Reno.
        let report = run_dumbbell(
            100.0,
            80,
            1.0,
            60.0,
            vec![
                Box::new(crate::cubic::Cubic::new()),
                Box::new(NewReno::new()),
            ],
        );
        let cubic = report.flows[0].throughput_mbps();
        let reno = report.flows[1].throughput_mbps();
        assert!(cubic > reno, "cubic={cubic} reno={reno}");
    }
}
