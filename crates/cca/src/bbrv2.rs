//! BBRv2 (IETF draft-cardwell-iccrg-bbr-congestion-control-02, 2019 —
//! the version the paper evaluated).
//!
//! BBRv2 keeps v1's model-based core (BtlBw × RTprop) but bounds it with
//! loss feedback, which is exactly why the paper finds its Nash
//! Equilibria contain *more CUBIC flows* than v1's (Fig. 11):
//!
//! * **`inflight_hi`** — a hard upper bound learned from loss: when the
//!   per-round loss rate during bandwidth probing exceeds 2%, the current
//!   in-flight volume becomes the ceiling.
//! * **`inflight_lo`** — a short-term bound set to `β = 0.7` of the
//!   window on each congestion event (a CUBIC-like multiplicative cut),
//!   released at the next probe (REFILL).
//! * **Headroom** — while cruising, BBRv2 only uses 85% of
//!   `inflight_hi`, leaving room for other flows.
//! * **ProbeBW sub-states** — DOWN (0.75) → CRUISE (1.0) → REFILL (1.0)
//!   → UP (1.25), with probes spaced seconds apart instead of every
//!   8 RTTs.
//! * **ProbeRTT** every 5 s to `0.5 × BDP` (gentler than v1's 4 packets).
//!
//! Simplifications vs. Linux `tcp_bbr2.c`: no ECN support, no `bw_lo`
//! bandwidth bound (the in-flight bounds dominate in drop-tail
//! bottlenecks), and deterministic probe spacing derived from the
//! per-flow seed instead of a random 2–3 s draw.

use crate::util::{RoundCounter, WindowedMax};
use bbrdom_netsim::cc::{AckSample, CongestionControl, FlowView};
use bbrdom_netsim::time::{SimDuration, SimTime};

const HIGH_GAIN: f64 = 2.885;
const BETA: f64 = 0.7;
const LOSS_THRESH: f64 = 0.02;
const HEADROOM: f64 = 0.85;
const BTLBW_WINDOW_ROUNDS: u64 = 10;
const RTPROP_WINDOW: SimDuration = SimDuration(10_000_000_000);
const PROBE_RTT_INTERVAL: SimDuration = SimDuration(5_000_000_000);
const PROBE_RTT_DURATION: SimDuration = SimDuration(200_000_000);
const CWND_GAIN: f64 = 2.0;
const MIN_CWND_MSS: f64 = 4.0;
const INIT_CWND_MSS: f64 = 10.0;

/// BBRv2 state machine states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    Startup,
    Drain,
    ProbeBwDown,
    ProbeBwCruise,
    ProbeBwRefill,
    ProbeBwUp,
    ProbeRtt,
}

/// BBR version 2.
#[derive(Debug, Clone)]
pub struct BbrV2 {
    mss: f64,
    state: State,
    rounds: RoundCounter,
    btlbw: WindowedMax,
    rtprop: Option<f64>,
    rtprop_stamp: SimTime,
    filled_pipe: bool,
    full_bw: f64,
    full_bw_count: u32,
    pacing_gain: f64,
    /// Loss-learned in-flight ceiling (bytes).
    inflight_hi: f64,
    /// Short-term in-flight bound from the last congestion event (bytes).
    inflight_lo: f64,
    /// Loss accounting for the current round.
    round_lost_bytes: u64,
    round_delivered_bytes: u64,
    loss_events_in_startup_round: u32,
    startup_lossy_rounds: u32,
    /// When the current ProbeBW sub-state began.
    cycle_stamp: SimTime,
    /// Seconds to cruise between probes (seed-derived, 2–3 s).
    probe_wait_secs: f64,
    refill_done_round: u64,
    probe_rtt_done_stamp: Option<SimTime>,
    probe_rtt_exit_round: u64,
    prev_cwnd: f64,
    cwnd: f64,
    pacing: Option<f64>,
}

impl BbrV2 {
    pub fn new(seed: u64) -> Self {
        BbrV2 {
            mss: 1500.0,
            state: State::Startup,
            rounds: RoundCounter::new(),
            btlbw: WindowedMax::new(BTLBW_WINDOW_ROUNDS),
            rtprop: None,
            rtprop_stamp: SimTime::ZERO,
            filled_pipe: false,
            full_bw: 0.0,
            full_bw_count: 0,
            pacing_gain: HIGH_GAIN,
            inflight_hi: f64::INFINITY,
            inflight_lo: f64::INFINITY,
            round_lost_bytes: 0,
            round_delivered_bytes: 0,
            loss_events_in_startup_round: 0,
            startup_lossy_rounds: 0,
            cycle_stamp: SimTime::ZERO,
            probe_wait_secs: 2.0 + (seed % 1000) as f64 / 1000.0,
            refill_done_round: 0,
            probe_rtt_done_stamp: None,
            probe_rtt_exit_round: 0,
            prev_cwnd: 0.0,
            cwnd: INIT_CWND_MSS * 1500.0,
            pacing: None,
        }
    }

    pub fn state(&self) -> State {
        self.state
    }

    pub fn inflight_hi(&self) -> f64 {
        self.inflight_hi
    }

    fn bdp(&self) -> Option<f64> {
        Some(self.btlbw.get()? * self.rtprop?)
    }

    fn min_cwnd(&self) -> f64 {
        MIN_CWND_MSS * self.mss
    }

    fn enter_down(&mut self, now: SimTime) {
        self.state = State::ProbeBwDown;
        self.pacing_gain = 0.75;
        self.cycle_stamp = now;
    }

    fn enter_cruise(&mut self, now: SimTime) {
        self.state = State::ProbeBwCruise;
        self.pacing_gain = 1.0;
        self.cycle_stamp = now;
    }

    fn enter_refill(&mut self, now: SimTime) {
        self.state = State::ProbeBwRefill;
        self.pacing_gain = 1.0;
        self.cycle_stamp = now;
        // Release the short-term bound before probing.
        self.inflight_lo = f64::INFINITY;
        self.refill_done_round = self.rounds.rounds() + 1;
    }

    fn enter_up(&mut self, now: SimTime) {
        self.state = State::ProbeBwUp;
        self.pacing_gain = 1.25;
        self.cycle_stamp = now;
    }

    fn round_loss_rate(&self) -> f64 {
        let total = self.round_lost_bytes + self.round_delivered_bytes;
        if total == 0 {
            0.0
        } else {
            self.round_lost_bytes as f64 / total as f64
        }
    }

    fn check_full_pipe(&mut self) {
        if self.filled_pipe || !self.rounds.round_start() {
            return;
        }
        // Loss-based startup exit (new in v2): two consecutive lossy
        // rounds mean the pipe is overfull even if bandwidth still grows.
        if self.round_loss_rate() > LOSS_THRESH && self.loss_events_in_startup_round > 0 {
            self.startup_lossy_rounds += 1;
        } else {
            self.startup_lossy_rounds = 0;
        }
        if self.startup_lossy_rounds >= 2 {
            self.filled_pipe = true;
            return;
        }
        let bw = match self.btlbw.get() {
            Some(b) => b,
            None => return,
        };
        if bw >= self.full_bw * 1.25 {
            self.full_bw = bw;
            self.full_bw_count = 0;
            return;
        }
        self.full_bw_count += 1;
        if self.full_bw_count >= 3 {
            self.filled_pipe = true;
        }
    }

    fn update_state_machine(&mut self, ack: &AckSample) {
        let inflight = ack.inflight_bytes as f64;
        match self.state {
            State::Startup => {
                self.check_full_pipe();
                if self.filled_pipe {
                    self.state = State::Drain;
                    self.pacing_gain = 1.0 / HIGH_GAIN;
                }
            }
            State::Drain => {
                if self.bdp().is_some_and(|b| inflight <= b) {
                    self.enter_down(ack.now);
                }
            }
            State::ProbeBwDown => {
                let target = self
                    .bdp()
                    .map(|b| (HEADROOM * self.inflight_hi).max(b))
                    .unwrap_or(f64::INFINITY);
                if inflight <= target.min(self.inflight_hi * HEADROOM)
                    || self.bdp().is_some_and(|b| inflight <= b)
                {
                    self.enter_cruise(ack.now);
                }
            }
            State::ProbeBwCruise => {
                let elapsed = ack.now.saturating_since(self.cycle_stamp).as_secs_f64();
                if elapsed > self.probe_wait_secs {
                    self.enter_refill(ack.now);
                }
            }
            State::ProbeBwRefill => {
                if self.rounds.rounds() >= self.refill_done_round {
                    self.enter_up(ack.now);
                }
            }
            State::ProbeBwUp => {
                let rtprop = self.rtprop.unwrap_or(0.1);
                let elapsed = ack.now.saturating_since(self.cycle_stamp).as_secs_f64() > rtprop;
                let too_high = self.round_loss_rate() > LOSS_THRESH;
                if too_high {
                    // Loss ceiling found: remember it and back down.
                    self.inflight_hi = inflight.max(self.bdp().unwrap_or(inflight));
                    self.enter_down(ack.now);
                } else if elapsed && self.bdp().is_some_and(|b| inflight >= 1.25 * b) {
                    // Probe achieved its volume without excessive loss:
                    // raise the ceiling and back down.
                    if self.inflight_hi.is_finite() {
                        self.inflight_hi = self.inflight_hi.max(inflight);
                    }
                    self.enter_down(ack.now);
                }
            }
            State::ProbeRtt => {}
        }
    }

    /// Accept an RTT sample into the RTprop filter. `expired` is
    /// computed before any stamp refresh (see the BBRv1 note: reading
    /// the stamp after this update would suppress ProbeRTT forever and
    /// ratchet the estimate upward).
    fn update_rtprop(&mut self, ack: &AckSample, expired: bool) {
        if let Some(rtt) = ack.rtt {
            let r = rtt.as_secs_f64();
            if self.rtprop.is_none() || expired || r <= self.rtprop.unwrap() {
                self.rtprop = Some(r);
                self.rtprop_stamp = ack.now;
            }
        }
    }

    fn probe_rtt_cwnd(&self) -> f64 {
        match self.bdp() {
            Some(b) => (0.5 * b).max(self.min_cwnd()),
            None => self.min_cwnd(),
        }
    }

    fn handle_probe_rtt(&mut self, ack: &AckSample, due: bool) {
        if self.state != State::ProbeRtt && due && self.rtprop.is_some() {
            self.state = State::ProbeRtt;
            self.pacing_gain = 1.0;
            self.prev_cwnd = self.cwnd;
            self.probe_rtt_done_stamp = None;
        }
        if self.state == State::ProbeRtt {
            let floor = self.probe_rtt_cwnd();
            self.cwnd = self.cwnd.min(floor);
            if self.probe_rtt_done_stamp.is_none() && (ack.inflight_bytes as f64) <= floor {
                self.probe_rtt_done_stamp = Some(ack.now + PROBE_RTT_DURATION);
                self.probe_rtt_exit_round = self.rounds.rounds() + 1;
            }
            if let Some(done) = self.probe_rtt_done_stamp {
                if ack.now >= done && self.rounds.rounds() >= self.probe_rtt_exit_round {
                    self.rtprop_stamp = ack.now;
                    self.cwnd = self.cwnd.max(self.prev_cwnd);
                    if self.filled_pipe {
                        self.enter_down(ack.now);
                    } else {
                        self.state = State::Startup;
                        self.pacing_gain = HIGH_GAIN;
                    }
                }
            }
        }
    }

    fn cwnd_bound(&self) -> f64 {
        let mut bound = self.inflight_lo.min(match self.state {
            // Cruising leaves headroom below the loss ceiling.
            State::ProbeBwCruise => HEADROOM * self.inflight_hi,
            _ => self.inflight_hi,
        });
        if let Some(bdp) = self.bdp() {
            bound = bound.min(CWND_GAIN * bdp);
        }
        bound.max(self.min_cwnd())
    }

    fn update_control(&mut self, ack: &AckSample) {
        if let Some(bw) = self.btlbw.get() {
            let rate = self.pacing_gain * bw;
            match self.pacing {
                Some(cur) if !self.filled_pipe && rate < cur => {}
                _ => self.pacing = Some(rate.max(1.0)),
            }
        }
        if self.state == State::ProbeRtt {
            return; // already clamped in handle_probe_rtt
        }
        let bound = self.cwnd_bound();
        if self.filled_pipe {
            self.cwnd = (self.cwnd + ack.acked_bytes as f64).min(bound);
        } else {
            self.cwnd += ack.acked_bytes as f64;
        }
        self.cwnd = self.cwnd.max(self.min_cwnd());
    }
}

impl CongestionControl for BbrV2 {
    fn name(&self) -> &'static str {
        "bbrv2"
    }

    fn on_ack(&mut self, ack: &AckSample, view: &FlowView) {
        self.mss = view.mss as f64;
        self.rounds
            .on_ack(ack.packet_delivered_at_send, ack.delivered_total);
        if self.rounds.round_start() {
            self.round_lost_bytes = 0;
            self.round_delivered_bytes = 0;
            self.loss_events_in_startup_round = 0;
        }
        self.round_delivered_bytes += ack.acked_bytes;
        self.round_lost_bytes += ack.newly_lost_bytes;
        if let Some(rate) = ack.delivery_rate {
            self.btlbw.update(self.rounds.rounds(), rate);
        } else if self.rounds.round_start() {
            self.btlbw.expire(self.rounds.rounds());
        }
        let filter_expired = ack.now.saturating_since(self.rtprop_stamp) > RTPROP_WINDOW;
        let probe_due = ack.now.saturating_since(self.rtprop_stamp) > PROBE_RTT_INTERVAL;
        self.update_rtprop(ack, filter_expired);
        self.update_state_machine(ack);
        self.handle_probe_rtt(ack, probe_due);
        self.update_control(ack);
    }

    fn on_congestion_event(&mut self, _now: SimTime, _view: &FlowView) {
        self.loss_events_in_startup_round += 1;
        // v2's CUBIC-like short-term reaction: β cut via inflight_lo.
        let basis = self.cwnd;
        self.inflight_lo = (BETA * basis).max(self.min_cwnd());
        if self.cwnd > self.inflight_lo {
            self.cwnd = self.inflight_lo;
        }
        // Loss while probing up also caps inflight_hi (handled per-round
        // via the loss-rate check in update_state_machine; a direct event
        // during UP means the probe hit the ceiling).
        if self.state == State::ProbeBwUp {
            let ceiling = self.cwnd.max(self.bdp().unwrap_or(self.cwnd));
            self.inflight_hi = if self.inflight_hi.is_finite() {
                self.inflight_hi.min(ceiling)
            } else {
                ceiling
            };
        }
    }

    fn on_rto(&mut self, _now: SimTime, _view: &FlowView) {
        self.prev_cwnd = self.cwnd.max(self.prev_cwnd);
        self.cwnd = self.min_cwnd();
        self.inflight_lo = f64::INFINITY;
    }

    fn cwnd_bytes(&self) -> u64 {
        self.cwnd.round() as u64
    }

    fn pacing_rate(&self) -> Option<f64> {
        self.pacing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_dumbbell;

    #[test]
    fn single_bbrv2_flow_fills_link() {
        let report = run_dumbbell(20.0, 40, 2.0, 30.0, vec![Box::new(BbrV2::new(0))]);
        let tp = report.flows[0].throughput_mbps();
        assert!(tp > 17.0, "bbrv2 throughput={tp}");
    }

    #[test]
    fn bbrv2_reacts_to_loss() {
        let mut b = BbrV2::new(0);
        b.cwnd = 100_000.0;
        let v = FlowView {
            mss: 1500,
            srtt: None,
            min_rtt: None,
            inflight_bytes: 0,
            delivered_bytes: 0,
            in_recovery: false,
        };
        b.on_congestion_event(SimTime::ZERO, &v);
        assert!((b.cwnd - 70_000.0).abs() < 1.0, "cwnd={}", b.cwnd);
    }

    #[test]
    fn bbrv2_less_aggressive_than_v1_against_cubic() {
        // Fig. 7/11 of the paper: BBRv2 takes a smaller share from CUBIC
        // than BBRv1 does, in a shallow buffer.
        let v1 = run_dumbbell(
            50.0,
            40,
            1.0,
            60.0,
            vec![
                Box::new(crate::bbr::Bbr::new(0)),
                Box::new(crate::cubic::Cubic::new()),
            ],
        );
        let v2 = run_dumbbell(
            50.0,
            40,
            1.0,
            60.0,
            vec![
                Box::new(BbrV2::new(0)),
                Box::new(crate::cubic::Cubic::new()),
            ],
        );
        let share_v1 = v1.flows[0].throughput_mbps();
        let share_v2 = v2.flows[0].throughput_mbps();
        assert!(
            share_v2 < share_v1,
            "v2 should be gentler: v1={share_v1} v2={share_v2}"
        );
    }

    #[test]
    fn probe_wait_is_seed_dependent_but_bounded() {
        for seed in 0..10 {
            let b = BbrV2::new(seed);
            assert!(b.probe_wait_secs >= 2.0 && b.probe_wait_secs < 3.0);
        }
    }
}
