//! TCP Vegas (Brakmo & Peterson '94): the original delay-based TCP.
//!
//! Included for the paper's related-work context (§6 cites
//! game-theoretic analyses of Reno-vs-Vegas competition) and as a second
//! delay-based reference point beside Copa. Vegas estimates its own
//! queue backlog from the RTT:
//!
//! ```text
//! diff = cwnd·(1 − base_rtt/rtt)        (packets it keeps in the queue)
//! ```
//!
//! and per RTT: grow by one MSS when `diff < α`, shrink by one when
//! `diff > β` (α = 2, β = 4 packets), hold otherwise. Slow start doubles
//! every *other* RTT and exits when `diff > γ = 1`. On loss it backs off
//! multiplicatively to 3/4 (the Vegas fast-retransmit response).
//!
//! Like Copa in default mode, Vegas keeps only a few packets queued, so
//! buffer-filling CUBIC starves it — the classic result that explains
//! why pure delay-based TCPs never displaced loss-based ones, and a
//! useful contrast to BBR's hybrid approach in this repository's games.

use crate::util::RoundCounter;
use bbrdom_netsim::cc::{AckSample, CongestionControl, FlowView};
use bbrdom_netsim::time::SimTime;

/// Lower backlog target, packets.
const ALPHA: f64 = 2.0;
/// Upper backlog target, packets.
const BETA: f64 = 4.0;
/// Slow-start exit backlog, packets.
const GAMMA: f64 = 1.0;
/// Multiplicative back-off on loss.
const LOSS_FACTOR: f64 = 0.75;
const MIN_CWND_MSS: f64 = 2.0;
const INIT_CWND_MSS: f64 = 10.0;

/// TCP Vegas congestion control.
#[derive(Debug, Clone)]
pub struct Vegas {
    mss: f64,
    /// Window in MSS (fractional).
    cwnd: f64,
    in_slow_start: bool,
    /// Slow start grows every other round.
    grow_this_round: bool,
    rounds: RoundCounter,
    /// Minimum RTT observed in the current round, seconds.
    round_min_rtt: f64,
    /// Base (propagation) RTT estimate, seconds.
    base_rtt: f64,
}

impl Vegas {
    pub fn new() -> Self {
        Vegas {
            mss: 1500.0,
            cwnd: INIT_CWND_MSS,
            in_slow_start: true,
            grow_this_round: true,
            rounds: RoundCounter::new(),
            round_min_rtt: f64::INFINITY,
            base_rtt: f64::INFINITY,
        }
    }

    pub fn cwnd_mss(&self) -> f64 {
        self.cwnd
    }

    /// The backlog estimate `diff` for a given round-min RTT, packets.
    fn diff(&self, rtt: f64) -> f64 {
        if !self.base_rtt.is_finite() || rtt <= 0.0 {
            return 0.0;
        }
        self.cwnd * (1.0 - self.base_rtt / rtt)
    }

    fn on_round(&mut self) {
        let rtt = self.round_min_rtt;
        self.round_min_rtt = f64::INFINITY;
        if !rtt.is_finite() {
            return;
        }
        self.base_rtt = self.base_rtt.min(rtt);
        let diff = self.diff(rtt);
        if self.in_slow_start {
            if diff > GAMMA {
                self.in_slow_start = false;
                // Settle at the window that produced the target backlog.
                self.cwnd = (self.cwnd - diff).max(MIN_CWND_MSS);
            } else if self.grow_this_round {
                self.cwnd *= 2.0;
            }
            self.grow_this_round = !self.grow_this_round;
            return;
        }
        if diff < ALPHA {
            self.cwnd += 1.0;
        } else if diff > BETA {
            self.cwnd -= 1.0;
        }
        self.cwnd = self.cwnd.max(MIN_CWND_MSS);
    }
}

impl Default for Vegas {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Vegas {
    fn name(&self) -> &'static str {
        "vegas"
    }

    fn on_ack(&mut self, ack: &AckSample, view: &FlowView) {
        self.mss = view.mss as f64;
        self.rounds
            .on_ack(ack.packet_delivered_at_send, ack.delivered_total);
        if let Some(rtt) = ack.rtt {
            self.round_min_rtt = self.round_min_rtt.min(rtt.as_secs_f64());
        }
        if self.rounds.round_start() {
            self.on_round();
        }
    }

    fn on_congestion_event(&mut self, _now: SimTime, _view: &FlowView) {
        self.cwnd = (self.cwnd * LOSS_FACTOR).max(MIN_CWND_MSS);
        self.in_slow_start = false;
    }

    fn on_rto(&mut self, _now: SimTime, _view: &FlowView) {
        self.cwnd = MIN_CWND_MSS;
        self.in_slow_start = true;
        self.grow_this_round = true;
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd * self.mss).round() as u64
    }

    fn pacing_rate(&self) -> Option<f64> {
        None // classic Vegas is ACK-clocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_dumbbell;

    #[test]
    fn vegas_alone_fills_link_with_tiny_queue() {
        let report = run_dumbbell(20.0, 40, 8.0, 30.0, vec![Box::new(Vegas::new())]);
        let tp = report.flows[0].throughput_mbps();
        assert!(tp > 17.0, "vegas throughput={tp}");
        // α–β targets 2–4 packets of queue.
        assert!(
            report.queue.avg_occupancy_bytes < 10.0 * 1500.0,
            "queue={}",
            report.queue.avg_occupancy_bytes
        );
        assert_eq!(report.queue.dropped_packets, 0);
    }

    #[test]
    fn vegas_starves_against_cubic() {
        // The classic result (and why delay-based TCP lost the Internet):
        // CUBIC fills the buffer, Vegas sees rising RTT and retreats.
        let report = run_dumbbell(
            30.0,
            40,
            4.0,
            40.0,
            vec![Box::new(Vegas::new()), Box::new(crate::cubic::Cubic::new())],
        );
        let vegas = report.flows[0].throughput_mbps();
        let cubic = report.flows[1].throughput_mbps();
        assert!(
            vegas < cubic / 2.0,
            "vegas={vegas} should be well below cubic={cubic}"
        );
    }

    #[test]
    fn backlog_estimate_math() {
        let mut v = Vegas::new();
        v.base_rtt = 0.040;
        v.cwnd = 20.0;
        // rtt = 50 ms → 20·(1 − 40/50) = 4 packets queued.
        assert!((v.diff(0.050) - 4.0).abs() < 1e-9);
        // At base RTT the backlog is zero.
        assert!(v.diff(0.040).abs() < 1e-9);
    }

    #[test]
    fn loss_backs_off_to_three_quarters() {
        let mut v = Vegas::new();
        v.cwnd = 40.0;
        v.in_slow_start = false;
        let view = FlowView {
            mss: 1500,
            srtt: None,
            min_rtt: None,
            inflight_bytes: 0,
            delivered_bytes: 0,
            in_recovery: false,
        };
        v.on_congestion_event(SimTime::ZERO, &view);
        assert!((v.cwnd_mss() - 30.0).abs() < 1e-9);
    }
}
