//! BBRv1 (Cardwell et al., 2016/17; IETF draft-cardwell-iccrg-bbr-00).
//!
//! Faithful to the published state machine:
//!
//! * **Startup** — pacing gain 2/ln 2 ≈ 2.885; exits when the windowed
//!   bottleneck-bandwidth estimate grows < 25% across three consecutive
//!   round trips ("full pipe").
//! * **Drain** — inverse gain until in-flight ≤ 1 estimated BDP.
//! * **ProbeBW** — the 8-phase gain cycle `[1.25, 0.75, 1 ×6]`, one phase
//!   per RTprop; the 1.25 phase holds until a loss or 1.25·BDP in flight,
//!   the 0.75 phase exits early once in-flight ≤ 1 BDP.
//! * **ProbeRTT** — every 10 s, clamp cwnd to 4 MSS for max(200 ms, one
//!   round trip), then refresh RTprop and restore.
//!
//! The crucial property for the paper's model: in ProbeBW the congestion
//! window is capped at `cwnd_gain × BDP_est = 2 × BtlBw·RTprop`, so when
//! competing with buffer-filling CUBIC flows BBR becomes **cwnd-limited**
//! with ≈ 2·BDP in flight (model assumption 2), where the BDP estimate is
//! inflated by the RTprop over-estimate `RTT⁺` (model Eq. (9)).
//!
//! Simplifications vs. Linux `tcp_bbr.c`: no pacing-quantum shaping, no
//! idle-restart handling (flows are backlogged), and loss is ignored
//! except for RTO (v1 is loss-agnostic — model assumption 4).

use crate::util::{RoundCounter, WindowedMax};
use bbrdom_netsim::cc::{AckSample, CongestionControl, FlowView};
use bbrdom_netsim::time::{SimDuration, SimTime};

/// Startup/Drain gain: 2/ln(2).
const HIGH_GAIN: f64 = 2.885;
/// ProbeBW pacing-gain cycle.
const GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// BtlBw max-filter window, in round trips.
const BTLBW_WINDOW_ROUNDS: u64 = 10;
/// RTprop validity window. In BBRv1 this doubles as the ProbeRTT
/// cadence: when the filter expires (no new minimum for 10 s), the flow
/// both accepts fresher samples and enters ProbeRTT.
const RTPROP_WINDOW: SimDuration = SimDuration(10_000_000_000);
/// Minimum time spent at the ProbeRTT floor.
const PROBE_RTT_DURATION: SimDuration = SimDuration(200_000_000);
/// cwnd gain while probing bandwidth (the 2×BDP in-flight cap).
const CWND_GAIN_PROBE_BW: f64 = 2.0;
/// ProbeRTT / absolute cwnd floor, in MSS.
const MIN_CWND_MSS: f64 = 4.0;
/// Initial window, in MSS.
const INIT_CWND_MSS: f64 = 10.0;

/// BBR state machine states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    Startup,
    Drain,
    ProbeBw,
    ProbeRtt,
}

/// BBR version 1.
#[derive(Debug, Clone)]
pub struct Bbr {
    mss: f64,
    state: State,
    rounds: RoundCounter,
    /// Windowed-max delivery-rate filter (bytes/s) over rounds.
    btlbw: WindowedMax,
    /// Minimum-RTT estimate and when it was last refreshed.
    rtprop: Option<f64>,
    rtprop_stamp: SimTime,
    /// Whether Startup saw the pipe fill.
    filled_pipe: bool,
    full_bw: f64,
    full_bw_count: u32,
    /// Gains currently in force.
    pacing_gain: f64,
    cwnd_gain: f64,
    /// ProbeBW cycle position and when the phase began.
    cycle_idx: usize,
    cycle_stamp: SimTime,
    /// ProbeRTT bookkeeping.
    probe_rtt_done_stamp: Option<SimTime>,
    probe_rtt_round_done: bool,
    probe_rtt_exit_round: u64,
    prev_cwnd: f64,
    /// Congestion window, bytes.
    cwnd: f64,
    /// Pacing rate, bytes/s (`None` until the first RTT/bandwidth sample).
    pacing: Option<f64>,
}

impl Bbr {
    /// `cycle_seed` randomizes the initial ProbeBW phase (Linux does this
    /// to de-synchronize flows); passing the flow index is sufficient.
    pub fn new(cycle_seed: u64) -> Self {
        // Any phase except the 0.75 drain phase (index 1), as in Linux.
        let mut idx = (cycle_seed % 7) as usize; // 0..=6
        if idx >= 1 {
            idx += 1; // skip index 1
        }
        Bbr {
            mss: 1500.0,
            state: State::Startup,
            rounds: RoundCounter::new(),
            btlbw: WindowedMax::new(BTLBW_WINDOW_ROUNDS),
            rtprop: None,
            rtprop_stamp: SimTime::ZERO,
            filled_pipe: false,
            full_bw: 0.0,
            full_bw_count: 0,
            pacing_gain: HIGH_GAIN,
            cwnd_gain: HIGH_GAIN,
            cycle_idx: idx,
            cycle_stamp: SimTime::ZERO,
            probe_rtt_done_stamp: None,
            probe_rtt_round_done: false,
            probe_rtt_exit_round: 0,
            prev_cwnd: 0.0,
            cwnd: INIT_CWND_MSS * 1500.0,
            pacing: None,
        }
    }

    /// Current state (exposed for tests and experiment instrumentation).
    pub fn state(&self) -> State {
        self.state
    }

    /// Current bottleneck-bandwidth estimate (bytes/s).
    pub fn btlbw_estimate(&self) -> Option<f64> {
        self.btlbw.get()
    }

    /// Current min-RTT estimate (seconds).
    pub fn rtprop_estimate(&self) -> Option<f64> {
        self.rtprop
    }

    /// Estimated BDP in bytes, if both estimates exist.
    fn bdp(&self) -> Option<f64> {
        Some(self.btlbw.get()? * self.rtprop?)
    }

    fn target_inflight(&self, gain: f64) -> Option<f64> {
        Some((self.bdp()? * gain).max(MIN_CWND_MSS * self.mss))
    }

    fn min_cwnd(&self) -> f64 {
        MIN_CWND_MSS * self.mss
    }

    fn enter_probe_bw(&mut self, now: SimTime) {
        self.state = State::ProbeBw;
        self.pacing_gain = GAIN_CYCLE[self.cycle_idx];
        self.cwnd_gain = CWND_GAIN_PROBE_BW;
        self.cycle_stamp = now;
    }

    fn advance_cycle(&mut self, now: SimTime) {
        self.cycle_idx = (self.cycle_idx + 1) % GAIN_CYCLE.len();
        self.pacing_gain = GAIN_CYCLE[self.cycle_idx];
        self.cycle_stamp = now;
    }

    fn check_cycle_phase(&mut self, ack: &AckSample) {
        if self.state != State::ProbeBw {
            return;
        }
        let rtprop = match self.rtprop {
            Some(r) => r,
            None => return,
        };
        let elapsed = (ack.now.saturating_since(self.cycle_stamp)).as_secs_f64() > rtprop;
        let inflight = ack.inflight_bytes as f64;
        let next = if self.pacing_gain > 1.0 {
            elapsed
                && (ack.newly_lost_bytes > 0
                    || self
                        .target_inflight(self.pacing_gain)
                        .is_some_and(|t| inflight >= t))
        } else if self.pacing_gain < 1.0 {
            elapsed || self.target_inflight(1.0).is_some_and(|t| inflight <= t)
        } else {
            elapsed
        };
        if next {
            self.advance_cycle(ack.now);
        }
    }

    fn check_full_pipe(&mut self) {
        if self.filled_pipe || !self.rounds.round_start() {
            return;
        }
        let bw = match self.btlbw.get() {
            Some(b) => b,
            None => return,
        };
        if bw >= self.full_bw * 1.25 {
            self.full_bw = bw;
            self.full_bw_count = 0;
            return;
        }
        self.full_bw_count += 1;
        if self.full_bw_count >= 3 {
            self.filled_pipe = true;
        }
    }

    fn update_state_machine(&mut self, ack: &AckSample) {
        match self.state {
            State::Startup => {
                self.check_full_pipe();
                if self.filled_pipe {
                    self.state = State::Drain;
                    self.pacing_gain = 1.0 / HIGH_GAIN;
                    self.cwnd_gain = HIGH_GAIN;
                }
            }
            State::Drain => {
                if self
                    .target_inflight(1.0)
                    .is_some_and(|t| (ack.inflight_bytes as f64) <= t)
                {
                    self.enter_probe_bw(ack.now);
                }
            }
            State::ProbeBw => {
                self.check_cycle_phase(ack);
            }
            State::ProbeRtt => {}
        }
    }

    /// Accept an RTT sample into the RTprop filter. `expired` must be
    /// computed *before* this call (draft `UpdateRTprop`): the same flag
    /// also drives ProbeRTT entry, and recomputing it after the stamp
    /// refresh here would mean ProbeRTT never fires and the RTprop
    /// estimate ratchets upward forever on a never-empty queue.
    fn update_rtprop(&mut self, ack: &AckSample, expired: bool) {
        if let Some(rtt) = ack.rtt {
            let r = rtt.as_secs_f64();
            if self.rtprop.is_none() || expired || r <= self.rtprop.unwrap() {
                self.rtprop = Some(r);
                self.rtprop_stamp = ack.now;
            }
        }
    }

    fn handle_probe_rtt(&mut self, ack: &AckSample, expired: bool) {
        if self.state != State::ProbeRtt && expired && self.rtprop.is_some() {
            // Enter ProbeRTT.
            self.state = State::ProbeRtt;
            self.pacing_gain = 1.0;
            self.cwnd_gain = 1.0;
            self.prev_cwnd = self.cwnd;
            self.probe_rtt_done_stamp = None;
        }
        if self.state == State::ProbeRtt {
            // Clamp the window to the ProbeRTT floor.
            self.cwnd = self.cwnd.min(self.min_cwnd());
            if self.probe_rtt_done_stamp.is_none() && (ack.inflight_bytes as f64) <= self.min_cwnd()
            {
                self.probe_rtt_done_stamp = Some(ack.now + PROBE_RTT_DURATION);
                self.probe_rtt_round_done = false;
                self.probe_rtt_exit_round = self.rounds.rounds() + 1;
            }
            if let Some(done) = self.probe_rtt_done_stamp {
                if self.rounds.rounds() >= self.probe_rtt_exit_round {
                    self.probe_rtt_round_done = true;
                }
                if self.probe_rtt_round_done && ack.now >= done {
                    // Exit ProbeRTT: refresh the RTprop stamp and restore.
                    self.rtprop_stamp = ack.now;
                    self.cwnd = self.cwnd.max(self.prev_cwnd);
                    if self.filled_pipe {
                        self.enter_probe_bw(ack.now);
                    } else {
                        self.state = State::Startup;
                        self.pacing_gain = HIGH_GAIN;
                        self.cwnd_gain = HIGH_GAIN;
                    }
                }
            }
        }
    }

    fn update_control(&mut self, ack: &AckSample) {
        // Pacing: gain × BtlBw. Before the pipe is filled, never let the
        // rate decrease (startup needs monotone probing).
        if let (Some(bw), Some(_)) = (self.btlbw.get(), self.rtprop) {
            let rate = self.pacing_gain * bw;
            match self.pacing {
                Some(cur) if !self.filled_pipe && rate < cur => {}
                _ => self.pacing = Some(rate.max(1.0)),
            }
        }
        // cwnd: grow toward cwnd_gain × BDP.
        if self.state == State::ProbeRtt {
            self.cwnd = self.cwnd.min(self.min_cwnd());
            return;
        }
        if let Some(target) = self.target_inflight(self.cwnd_gain) {
            if self.filled_pipe {
                self.cwnd = (self.cwnd + ack.acked_bytes as f64).min(target);
            } else {
                // Startup: always grow; the pacing rate is the brake.
                self.cwnd += ack.acked_bytes as f64;
            }
        } else {
            self.cwnd += ack.acked_bytes as f64;
        }
        self.cwnd = self.cwnd.max(self.min_cwnd());
    }
}

impl CongestionControl for Bbr {
    fn name(&self) -> &'static str {
        "bbr"
    }

    fn on_ack(&mut self, ack: &AckSample, view: &FlowView) {
        self.mss = view.mss as f64;
        self.rounds
            .on_ack(ack.packet_delivered_at_send, ack.delivered_total);
        if let Some(rate) = ack.delivery_rate {
            self.btlbw.update(self.rounds.rounds(), rate);
        } else if self.rounds.round_start() {
            self.btlbw.expire(self.rounds.rounds());
        }
        let rtprop_expired = ack.now.saturating_since(self.rtprop_stamp) > RTPROP_WINDOW;
        self.update_rtprop(ack, rtprop_expired);
        self.update_state_machine(ack);
        self.handle_probe_rtt(ack, rtprop_expired);
        self.update_control(ack);
    }

    fn on_congestion_event(&mut self, _now: SimTime, _view: &FlowView) {
        // BBRv1 is loss-agnostic (model assumption 4).
    }

    fn on_rto(&mut self, _now: SimTime, _view: &FlowView) {
        // Conservative collapse; the window re-grows from ACKs.
        self.prev_cwnd = self.cwnd.max(self.prev_cwnd);
        self.cwnd = self.min_cwnd();
    }

    fn cwnd_bytes(&self) -> u64 {
        self.cwnd.round() as u64
    }

    fn pacing_rate(&self) -> Option<f64> {
        self.pacing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_dumbbell;

    #[test]
    fn cycle_seed_never_starts_in_drain_phase() {
        for seed in 0..20 {
            let b = Bbr::new(seed);
            assert_ne!(b.cycle_idx, 1, "seed {seed} started at the 0.75 phase");
        }
    }

    #[test]
    fn single_bbr_flow_fills_link() {
        let report = run_dumbbell(20.0, 40, 2.0, 30.0, vec![Box::new(Bbr::new(0))]);
        let tp = report.flows[0].throughput_mbps();
        assert!(tp > 18.0, "bbr throughput={tp}");
    }

    #[test]
    fn bbr_keeps_queue_small_when_alone() {
        // Alone, BBR should not fill a deep buffer: its in-flight cap is
        // 2×BDP against a true BDP, so queue ≲ 1 BDP on average.
        let report = run_dumbbell(20.0, 40, 10.0, 30.0, vec![Box::new(Bbr::new(0))]);
        let bdp = 20.0e6 / 8.0 * 0.040;
        assert!(
            report.queue.avg_occupancy_bytes < 1.5 * bdp,
            "avg queue {} vs bdp {}",
            report.queue.avg_occupancy_bytes,
            bdp
        );
    }

    #[test]
    fn bbr_estimates_bandwidth_and_rtt() {
        let rate_mbps = 20.0;
        let mut sim = {
            use bbrdom_netsim::{FlowConfig, Rate, SimConfig, SimDuration, Simulator};
            let rate = Rate::from_mbps(rate_mbps);
            let rtt = SimDuration::from_millis(40);
            let buf = bbrdom_netsim::units::buffer_bytes(rate, rtt, 2.0);
            let mut sim =
                Simulator::new(SimConfig::new(rate, buf, SimDuration::from_secs_f64(15.0)));
            sim.add_flow(FlowConfig::new(Box::new(Bbr::new(0)), rtt));
            sim
        };
        let report = sim.run();
        // Through the report we only see throughput; estimate quality shows
        // as achieving ~full rate, with loss confined to the Startup
        // overshoot (BBRv1 famously bursts while probing for the ceiling,
        // then runs loss-free alone: its steady-state inflight is 2×BDP
        // against 3×BDP of capacity here).
        assert!(report.flows[0].throughput_mbps() > 0.9 * rate_mbps);
        let sent_packets = report.flows[0].sent_bytes / 1500;
        assert!(
            (report.flows[0].lost_packets as f64) < 0.05 * sent_packets as f64,
            "loss {} of {} sent",
            report.flows[0].lost_packets,
            sent_packets
        );
    }

    #[test]
    fn bbr_loss_is_startup_only_when_alone() {
        // Losses must not grow with run length: they all happen in the
        // Startup overshoot.
        let short = run_dumbbell(20.0, 40, 2.0, 15.0, vec![Box::new(Bbr::new(0))]);
        let long = run_dumbbell(20.0, 40, 2.0, 60.0, vec![Box::new(Bbr::new(0))]);
        assert_eq!(
            short.flows[0].lost_packets, long.flows[0].lost_packets,
            "steady-state BBR alone must be loss-free"
        );
    }

    #[test]
    fn two_bbr_flows_share_fairly() {
        let report = run_dumbbell(
            20.0,
            40,
            4.0,
            60.0,
            vec![Box::new(Bbr::new(0)), Box::new(Bbr::new(1))],
        );
        let t0 = report.flows[0].throughput_mbps();
        let t1 = report.flows[1].throughput_mbps();
        let total = t0 + t1;
        assert!(total > 18.0, "total={total}");
        let jain = total * total / (2.0 * (t0 * t0 + t1 * t1));
        assert!(jain > 0.85, "jain={jain} (t0={t0}, t1={t1})");
    }

    #[test]
    fn bbr_beats_cubic_in_shallow_buffer() {
        // Hock et al. / Ware et al.: in shallow buffers BBR takes more
        // than its fair share from CUBIC.
        let report = run_dumbbell(
            50.0,
            40,
            1.0,
            60.0,
            vec![Box::new(Bbr::new(0)), Box::new(crate::cubic::Cubic::new())],
        );
        let bbr = report.flows[0].throughput_mbps();
        let cubic = report.flows[1].throughput_mbps();
        assert!(bbr > cubic, "bbr={bbr} cubic={cubic}");
    }

    #[test]
    fn cubic_gains_ground_in_deep_buffer() {
        // The paper's Fig. 3: BBR's share falls as the buffer deepens,
        // because its 2×BDP in-flight cap limits its queue share while
        // CUBIC fills the rest.
        let shallow = run_dumbbell(
            50.0,
            40,
            2.0,
            60.0,
            vec![Box::new(Bbr::new(0)), Box::new(crate::cubic::Cubic::new())],
        );
        let deep = run_dumbbell(
            50.0,
            40,
            16.0,
            60.0,
            vec![Box::new(Bbr::new(0)), Box::new(crate::cubic::Cubic::new())],
        );
        let bbr_shallow = shallow.flows[0].throughput_mbps();
        let bbr_deep = deep.flows[0].throughput_mbps();
        assert!(
            bbr_deep < bbr_shallow,
            "bbr share should fall with buffer depth: shallow={bbr_shallow} deep={bbr_deep}"
        );
    }
}
