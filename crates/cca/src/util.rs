//! Small numeric utilities shared by the algorithms: windowed min/max
//! filters (the BBR family's `BtlBw` and `RTprop` estimators) and a
//! packet-timed round counter.
//!
//! The filters are exact sliding-window extrema over a monotone "tick"
//! axis (round number for bandwidth, nanoseconds for RTT), implemented
//! with the classic monotonic-deque algorithm — O(1) amortized per
//! update, no approximation (unlike Linux's 3-sample minmax).

use std::collections::VecDeque;

/// Sliding-window maximum over a monotonically nondecreasing tick axis.
#[derive(Debug, Clone)]
pub struct WindowedMax {
    window: u64,
    /// (tick, value); values strictly decreasing front→back.
    deque: VecDeque<(u64, f64)>,
}

impl WindowedMax {
    pub fn new(window: u64) -> Self {
        assert!(window > 0);
        WindowedMax {
            window,
            deque: VecDeque::new(),
        }
    }

    /// Insert `value` observed at `tick` and expire samples older than the
    /// window. Ticks must be nondecreasing.
    pub fn update(&mut self, tick: u64, value: f64) {
        while matches!(self.deque.back(), Some(&(_, v)) if v <= value) {
            self.deque.pop_back();
        }
        self.deque.push_back((tick, value));
        self.expire(tick);
    }

    /// Expire old samples without inserting (e.g. on a round boundary).
    pub fn expire(&mut self, tick: u64) {
        let cutoff = tick.saturating_sub(self.window);
        while matches!(self.deque.front(), Some(&(t, _)) if t < cutoff) {
            self.deque.pop_front();
        }
    }

    /// Current windowed maximum, if any sample is in the window.
    pub fn get(&self) -> Option<f64> {
        self.deque.front().map(|&(_, v)| v)
    }

    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }

    /// Drop all samples (BBR does this when restarting from idle).
    pub fn reset(&mut self) {
        self.deque.clear();
    }
}

/// Sliding-window minimum over a monotonically nondecreasing tick axis.
#[derive(Debug, Clone)]
pub struct WindowedMin {
    window: u64,
    /// (tick, value); values strictly increasing front→back.
    deque: VecDeque<(u64, f64)>,
}

impl WindowedMin {
    pub fn new(window: u64) -> Self {
        assert!(window > 0);
        WindowedMin {
            window,
            deque: VecDeque::new(),
        }
    }

    pub fn update(&mut self, tick: u64, value: f64) {
        while matches!(self.deque.back(), Some(&(_, v)) if v >= value) {
            self.deque.pop_back();
        }
        self.deque.push_back((tick, value));
        self.expire(tick);
    }

    pub fn expire(&mut self, tick: u64) {
        let cutoff = tick.saturating_sub(self.window);
        while matches!(self.deque.front(), Some(&(t, _)) if t < cutoff) {
            self.deque.pop_front();
        }
    }

    pub fn get(&self) -> Option<f64> {
        self.deque.front().map(|&(_, v)| v)
    }

    /// Tick at which the current minimum was recorded.
    pub fn min_tick(&self) -> Option<u64> {
        self.deque.front().map(|&(t, _)| t)
    }

    pub fn reset(&mut self) {
        self.deque.clear();
    }
}

/// Packet-timed round counting, as in Linux TCP: a round trip completes
/// when a packet sent *after* the previous round's end is ACKed. Feed it
/// `(packet_delivered_at_send, delivered_total)` from each ACK.
#[derive(Debug, Clone, Default)]
pub struct RoundCounter {
    next_round_delivered: u64,
    round_count: u64,
    round_start: bool,
}

impl RoundCounter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Process one ACK; afterwards [`Self::round_start`] reports whether
    /// this ACK began a new round.
    pub fn on_ack(&mut self, packet_delivered_at_send: u64, delivered_total: u64) {
        if packet_delivered_at_send >= self.next_round_delivered {
            self.next_round_delivered = delivered_total;
            self.round_count += 1;
            self.round_start = true;
        } else {
            self.round_start = false;
        }
    }

    /// True iff the most recent `on_ack` crossed a round boundary.
    pub fn round_start(&self) -> bool {
        self.round_start
    }

    /// Number of completed rounds.
    pub fn rounds(&self) -> u64 {
        self.round_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_max_tracks_sliding_maximum() {
        let mut f = WindowedMax::new(3);
        f.update(0, 5.0);
        f.update(1, 3.0);
        assert_eq!(f.get(), Some(5.0));
        f.update(2, 4.0);
        assert_eq!(f.get(), Some(5.0));
        // tick 4: window is (1..=4], the 5.0 at tick 0 expires.
        f.update(4, 1.0);
        assert_eq!(f.get(), Some(4.0));
        f.update(6, 0.5);
        assert_eq!(f.get(), Some(1.0));
    }

    #[test]
    fn windowed_max_new_max_replaces_all() {
        let mut f = WindowedMax::new(10);
        for i in 0..5 {
            f.update(i, i as f64);
        }
        assert_eq!(f.get(), Some(4.0));
        f.update(5, 100.0);
        assert_eq!(f.get(), Some(100.0));
    }

    #[test]
    fn windowed_min_tracks_sliding_minimum() {
        let mut f = WindowedMin::new(5);
        f.update(0, 10.0);
        f.update(1, 12.0);
        f.update(2, 8.0);
        assert_eq!(f.get(), Some(8.0));
        f.update(8, 20.0);
        // min at tick 2 is now out of the (3..=8] window.
        assert_eq!(f.get(), Some(20.0));
    }

    #[test]
    fn windowed_min_records_tick_of_minimum() {
        let mut f = WindowedMin::new(100);
        f.update(10, 5.0);
        f.update(20, 7.0);
        assert_eq!(f.min_tick(), Some(10));
        f.update(30, 2.0);
        assert_eq!(f.min_tick(), Some(30));
    }

    #[test]
    fn expire_without_update() {
        let mut f = WindowedMax::new(2);
        f.update(0, 9.0);
        f.expire(5);
        assert_eq!(f.get(), None);
        assert!(f.is_empty());
    }

    #[test]
    fn round_counter_advances_once_per_window() {
        let mut rc = RoundCounter::new();
        // First ACK: packet sent when delivered=0, delivered_total=1500.
        rc.on_ack(0, 1500);
        assert!(rc.round_start());
        assert_eq!(rc.rounds(), 1);
        // Packets sent before delivered reached 1500 do not advance.
        rc.on_ack(0, 3000);
        assert!(!rc.round_start());
        rc.on_ack(1400, 4500);
        assert!(!rc.round_start());
        // A packet sent after the round boundary does.
        rc.on_ack(1500, 6000);
        assert!(rc.round_start());
        assert_eq!(rc.rounds(), 2);
    }
}
