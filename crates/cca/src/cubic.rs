//! TCP CUBIC (Ha, Rhee & Xu 2008; RFC 8312) with Linux parameters.
//!
//! The window grows along the cubic `W(t) = C·(t−K)³ + W_max` (Eq. (1) of
//! the paper) with `C = 0.4`, and on a congestion event multiplicatively
//! backs off **to** `β = 0.7` of the current window — the single behaviour
//! the paper's model depends on (its `b_cmin` derivation, Eq. (12)).
//!
//! Included, as in Linux: slow start with **HyStart** delay-based exit,
//! fast convergence, and the TCP-friendly (Reno-emulation) region.
//! HyStart matters even for long flows: without it, slow start blasts a
//! multi-BDP burst into the bottleneck, and against a pacing BBR flow
//! the resulting loss storm can put the flow into a retransmission
//! spiral it never recovers from — which real CUBIC does not exhibit.
//! (We implement HyStart's delay-increase detector; the ACK-train
//! detector adds little in a simulator with per-packet ACKs.)

use crate::util::RoundCounter;
use bbrdom_netsim::cc::{AckSample, CongestionControl, FlowView};
use bbrdom_netsim::time::SimTime;

/// CUBIC's scaling constant (windows in MSS, time in seconds).
const C: f64 = 0.4;
/// Multiplicative back-off target: `cwnd ← β·cwnd` on loss.
const BETA: f64 = 0.7;
/// Initial window (Linux default), in MSS.
const INIT_CWND: f64 = 10.0;
/// Minimum window after any back-off, in MSS.
const MIN_CWND: f64 = 2.0;
/// HyStart: minimum RTT samples per round before the detector may fire.
const HYSTART_MIN_SAMPLES: u32 = 8;
/// HyStart: delay threshold floor/ceiling, seconds (Linux: 4–16 ms).
const HYSTART_DELAY_MIN: f64 = 0.004;
const HYSTART_DELAY_MAX: f64 = 0.016;

/// TCP CUBIC congestion control.
#[derive(Debug, Clone)]
pub struct Cubic {
    mss: f64,
    /// Congestion window, in MSS (fractional).
    cwnd: f64,
    /// Slow-start threshold, in MSS.
    ssthresh: f64,
    /// Window size just before the last reduction (the paper's `W_max`).
    w_max: f64,
    /// Start of the current cubic epoch.
    epoch_start: Option<SimTime>,
    /// Time offset `K` where the cubic reaches `w_max` again.
    k: f64,
    /// Reno-emulation window estimate, in MSS.
    w_est: f64,
    /// Enable fast convergence (Linux default: on).
    fast_convergence: bool,
    /// ACKed MSS accumulated for Reno-emulation growth.
    ack_cnt: f64,
    // --- HyStart (delay-increase detector) ---
    hystart_enabled: bool,
    rounds: RoundCounter,
    /// Lowest RTT seen in the previous round (the baseline), seconds.
    hystart_base_rtt: f64,
    /// Lowest RTT seen so far in the current round, seconds.
    hystart_round_min: f64,
    /// RTT samples seen this round.
    hystart_samples: u32,
}

impl Cubic {
    pub fn new() -> Self {
        Cubic {
            mss: 1500.0,
            cwnd: INIT_CWND,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
            fast_convergence: true,
            ack_cnt: 0.0,
            hystart_enabled: true,
            rounds: RoundCounter::new(),
            hystart_base_rtt: f64::INFINITY,
            hystart_round_min: f64::INFINITY,
            hystart_samples: 0,
        }
    }

    /// Disable HyStart (ablation only: exposes the slow-start overshoot
    /// pathology that real CUBIC avoids — see the module docs).
    pub fn without_hystart() -> Self {
        Cubic {
            hystart_enabled: false,
            ..Cubic::new()
        }
    }

    /// HyStart delay-increase detection; returns true when slow start
    /// should end because queuing delay is already building.
    fn hystart_update(&mut self, ack: &AckSample) -> bool {
        if !self.hystart_enabled {
            return false;
        }
        if self.rounds.round_start() {
            self.hystart_base_rtt = self.hystart_base_rtt.min(self.hystart_round_min);
            self.hystart_round_min = f64::INFINITY;
            self.hystart_samples = 0;
        }
        if let Some(rtt) = ack.rtt {
            self.hystart_round_min = self.hystart_round_min.min(rtt.as_secs_f64());
            self.hystart_samples += 1;
        }
        if self.hystart_samples >= HYSTART_MIN_SAMPLES && self.hystart_base_rtt.is_finite() {
            let thresh = (self.hystart_base_rtt / 8.0).clamp(HYSTART_DELAY_MIN, HYSTART_DELAY_MAX);
            if self.hystart_round_min >= self.hystart_base_rtt + thresh {
                return true;
            }
        }
        false
    }

    /// Current window in MSS (for tests/inspection).
    pub fn cwnd_mss(&self) -> f64 {
        self.cwnd
    }

    /// The `W_max` the cubic curve aims back to, in MSS.
    pub fn w_max_mss(&self) -> f64 {
        self.w_max
    }

    fn reset_epoch(&mut self) {
        self.epoch_start = None;
    }

    /// Cubic window target at elapsed time `t` (seconds) since epoch.
    fn w_cubic(&self, t: f64) -> f64 {
        C * (t - self.k).powi(3) + self.w_max
    }

    fn congestion_avoidance(&mut self, now: SimTime, srtt: f64) {
        if self.epoch_start.is_none() {
            self.epoch_start = Some(now);
            if self.cwnd < self.w_max {
                self.k = ((self.w_max - self.cwnd) / C).cbrt();
            } else {
                self.k = 0.0;
                self.w_max = self.cwnd;
            }
            self.w_est = self.cwnd;
            self.ack_cnt = 0.0;
        }
        let t = (now - self.epoch_start.unwrap()).as_secs_f64();
        // RFC 8312 §4.1: compare against the target one RTT in the future.
        let target = self.w_cubic(t + srtt);
        if target > self.cwnd {
            self.cwnd += (target - self.cwnd) / self.cwnd;
        } else {
            // Minimal growth to stay responsive (Linux: 1% per RTT region).
            self.cwnd += 0.01 / self.cwnd;
        }
        // TCP-friendly region (RFC 8312 §4.2): emulate Reno's AIMD with
        // α = 3(1−β)/(1+β).
        let alpha = 3.0 * (1.0 - BETA) / (1.0 + BETA);
        self.w_est += alpha * self.ack_cnt / self.cwnd;
        self.ack_cnt = 0.0;
        if self.w_est > self.cwnd {
            self.cwnd = self.w_est;
        }
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn on_ack(&mut self, ack: &AckSample, view: &FlowView) {
        self.mss = view.mss as f64;
        self.rounds
            .on_ack(ack.packet_delivered_at_send, ack.delivered_total);
        let acked_mss = ack.acked_bytes as f64 / self.mss;
        self.ack_cnt += acked_mss;
        let in_slow_start = self.cwnd < self.ssthresh;
        if in_slow_start && self.hystart_update(ack) {
            // HyStart: leave slow start before losses do it for us.
            self.ssthresh = self.cwnd;
        }
        // No growth while recovering from loss (standard TCP behaviour).
        if view.in_recovery {
            return;
        }
        if self.cwnd < self.ssthresh {
            self.cwnd += acked_mss;
            return;
        }
        let srtt = view.srtt.map(|d| d.as_secs_f64()).unwrap_or(0.1);
        self.congestion_avoidance(ack.now, srtt);
    }

    fn on_congestion_event(&mut self, _now: SimTime, _view: &FlowView) {
        // Fast convergence: if we back off from below the previous W_max,
        // release extra bandwidth for newcomers.
        if self.fast_convergence && self.cwnd < self.w_max {
            self.w_max = self.cwnd * (2.0 - BETA) / 2.0;
        } else {
            self.w_max = self.cwnd;
        }
        self.cwnd = (self.cwnd * BETA).max(MIN_CWND);
        self.ssthresh = self.cwnd;
        self.reset_epoch();
    }

    fn on_rto(&mut self, _now: SimTime, _view: &FlowView) {
        self.w_max = self.cwnd;
        self.ssthresh = (self.cwnd * BETA).max(MIN_CWND);
        self.cwnd = 1.0;
        self.reset_epoch();
    }

    fn cwnd_bytes(&self) -> u64 {
        (self.cwnd * self.mss).round() as u64
    }

    fn pacing_rate(&self) -> Option<f64> {
        None // pure ACK clocking, as in (non-fq-paced) Linux CUBIC
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_dumbbell;
    use bbrdom_netsim::time::SimDuration;

    fn view(mss: u64, srtt_ms: u64, in_recovery: bool) -> FlowView {
        FlowView {
            mss,
            srtt: Some(SimDuration::from_millis(srtt_ms)),
            min_rtt: Some(SimDuration::from_millis(srtt_ms)),
            inflight_bytes: 0,
            delivered_bytes: 0,
            in_recovery,
        }
    }

    fn ack(now_s: f64, bytes: u64) -> AckSample {
        AckSample {
            now: SimTime::from_secs_f64(now_s),
            acked_bytes: bytes,
            rtt: Some(SimDuration::from_millis(40)),
            delivery_rate: None,
            delivered_total: 0,
            packet_delivered_at_send: 0,
            inflight_bytes: 0,
            newly_lost_bytes: 0,
        }
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut c = Cubic::new();
        let v = view(1500, 40, false);
        let before = c.cwnd_mss();
        // One window's worth of ACKs → window doubles.
        for i in 0..before as usize {
            c.on_ack(&ack(0.001 * i as f64, 1500), &v);
        }
        assert!((c.cwnd_mss() - 2.0 * before).abs() < 1e-6);
    }

    #[test]
    fn backoff_is_to_seventy_percent() {
        let mut c = Cubic::new();
        c.cwnd = 100.0;
        c.ssthresh = 50.0; // out of slow start
        c.on_congestion_event(SimTime::from_secs_f64(1.0), &view(1500, 40, false));
        assert!((c.cwnd_mss() - 70.0).abs() < 1e-9);
        assert!((c.w_max_mss() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fast_convergence_shrinks_w_max() {
        let mut c = Cubic::new();
        c.cwnd = 100.0;
        c.ssthresh = 50.0;
        c.w_max = 150.0; // backing off below previous W_max
        c.on_congestion_event(SimTime::from_secs_f64(1.0), &view(1500, 40, false));
        // w_max = cwnd*(2-β)/2 = 100*0.65 = 65
        assert!((c.w_max_mss() - 65.0).abs() < 1e-9);
    }

    #[test]
    fn cubic_growth_returns_to_w_max() {
        // After a back-off from W_max=100, the window should climb back to
        // ~W_max after K = cbrt((W_max - 0.7*W_max)/C) seconds.
        let mut c = Cubic::new();
        c.cwnd = 100.0;
        c.ssthresh = 50.0;
        c.on_congestion_event(SimTime::ZERO, &view(1500, 40, false));
        let k = ((100.0 - 70.0) / C).cbrt();
        let v = view(1500, 40, false);
        // Feed ACKs at a steady clip until time K.
        let mut t = 0.0;
        while t < k {
            c.on_ack(&ack(t, 1500), &v);
            t += 0.005;
        }
        assert!(
            (c.cwnd_mss() - 100.0).abs() < 8.0,
            "cwnd={} expected ≈100",
            c.cwnd_mss()
        );
    }

    #[test]
    fn no_growth_during_recovery() {
        let mut c = Cubic::new();
        c.cwnd = 50.0;
        c.ssthresh = 25.0;
        let w0 = c.cwnd_mss();
        c.on_ack(&ack(1.0, 1500), &view(1500, 40, true));
        assert_eq!(c.cwnd_mss(), w0);
    }

    #[test]
    fn rto_collapses_window() {
        let mut c = Cubic::new();
        c.cwnd = 80.0;
        c.on_rto(SimTime::from_secs_f64(2.0), &view(1500, 40, false));
        assert!((c.cwnd_mss() - 1.0).abs() < 1e-9);
        assert!((c.ssthresh - 56.0).abs() < 1e-9);
    }

    #[test]
    fn hystart_exits_slow_start_before_heavy_loss() {
        // With HyStart, slow start against a self-built queue ends with
        // far fewer losses than without.
        let with_hs = run_dumbbell(20.0, 40, 1.0, 10.0, vec![Box::new(Cubic::new())]);
        let without = run_dumbbell(
            20.0,
            40,
            1.0,
            10.0,
            vec![Box::new(Cubic::without_hystart())],
        );
        assert!(
            with_hs.flows[0].lost_packets < without.flows[0].lost_packets,
            "hystart {} losses vs no-hystart {}",
            with_hs.flows[0].lost_packets,
            without.flows[0].lost_packets
        );
    }

    #[test]
    fn single_cubic_flow_fills_link() {
        let report = run_dumbbell(20.0, 40, 2.0, 30.0, vec![Box::new(Cubic::new())]);
        let tp = report.flows[0].throughput_mbps();
        assert!(tp > 18.0, "cubic throughput={tp}");
    }

    #[test]
    fn two_cubic_flows_share_fairly() {
        let report = run_dumbbell(
            20.0,
            40,
            2.0,
            60.0,
            vec![Box::new(Cubic::new()), Box::new(Cubic::new())],
        );
        let t0 = report.flows[0].throughput_mbps();
        let t1 = report.flows[1].throughput_mbps();
        let total = t0 + t1;
        assert!(total > 18.0, "total={total}");
        // Jain fairness for 2 flows ≥ 0.9.
        let jain = total * total / (2.0 * (t0 * t0 + t1 * t1));
        assert!(jain > 0.9, "jain={jain} (t0={t0}, t1={t1})");
    }

    #[test]
    fn cubic_experiences_periodic_backoffs() {
        let report = run_dumbbell(20.0, 40, 1.0, 30.0, vec![Box::new(Cubic::new())]);
        assert!(
            report.flows[0].congestion_events >= 2,
            "events={}",
            report.flows[0].congestion_events
        );
    }
}
