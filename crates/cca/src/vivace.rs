//! PCC Vivace (Dong et al., NSDI '18): online-learning rate control.
//!
//! Vivace ignores the TCP machinery entirely and performs gradient-style
//! ascent on a utility function measured over *monitor intervals* (MIs):
//!
//! ```text
//! u(x) = x^0.9 − b·x·(dRTT/dt) − c·x·L        x: throughput (Mbps)
//! ```
//!
//! with `b = 900`, `c = 11.35` (the paper's defaults). The latency term
//! penalizes RTT *growth* (not absolute delay), and the loss coefficient
//! tolerates moderate loss — which is why Vivace, like BBR, can take a
//! disproportionate bandwidth share from CUBIC (paper Fig. 7).
//!
//! Implementation notes, mirroring the PCC reference behaviour:
//!
//! * **Send-time attribution.** An MI's utility is computed from the
//!   ACKs of packets *sent during* that MI, which arrive roughly one RTT
//!   later. (Attributing by ACK arrival time measures the previous MI's
//!   rate and makes every up-probe look useless — the controller then
//!   walks the rate to the floor.) Because the bottleneck is FIFO,
//!   per-flow delivery is in order: an ACK for a packet sent after an
//!   MI's end proves all of that MI's packets have been ACKed or lost,
//!   which is our finalization signal.
//! * **Latency-inflation dead zone.** RTT gradients below the dead zone are
//!   noise; without the filter the 900× coefficient annihilates every
//!   probe.
//! * Slow start doubles the rate each MI until utility drops; then
//!   paired `r(1±ε)` probes with a confidence-amplified step (the
//!   paper's `m`), coasting at the base rate while a pair's ACKs drain.

use bbrdom_netsim::cc::{AckSample, CongestionControl, FlowView};
use bbrdom_netsim::time::SimTime;
use std::collections::VecDeque;

/// Utility exponent on throughput.
const EXPONENT: f64 = 0.9;
/// Latency-gradient penalty coefficient.
const B_LATENCY: f64 = 900.0;
/// Loss penalty coefficient.
const C_LOSS: f64 = 11.35;
/// Probe amplitude ε.
const EPSILON: f64 = 0.05;
/// Latency-inflation dead zone (s/s). RTT growth slower than this is
/// treated as noise, as in the PCC reference implementation's
/// latency-inflation filter. The value sits above the ramp rate of a
/// competing CUBIC's window growth (≈ 0.03 s/s at the paper's settings)
/// but below Vivace's own overshoot signature, which is what makes
/// Vivace compete with loss-based flows instead of yielding to them.
const GRADIENT_DEAD_ZONE: f64 = 0.035;
/// Base step as a fraction of the rate.
const STEP_BASE: f64 = 0.02;
/// Maximum step as a fraction of the rate.
const STEP_MAX: f64 = 0.20;
/// Minimum sending rate, bytes/s (≈ 0.3 Mbps).
const MIN_RATE: f64 = 37_500.0;
/// Minimum monitor-interval length, seconds.
const MIN_MI: f64 = 0.01;

/// What a monitor interval was testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MiRole {
    /// Slow start: rate doubled from the previous MI.
    SlowStart,
    /// First probe of a pair, at `r(1+ε)`.
    ProbeUp,
    /// Second probe of a pair, at `r(1−ε)`.
    ProbeDown,
    /// Coasting at the base rate (no decision attached).
    Neutral,
}

/// One monitor interval's accounting.
#[derive(Debug, Clone, Copy)]
struct Mi {
    role: MiRole,
    start: SimTime,
    /// Set when the sender moves on to the next MI.
    end: Option<SimTime>,
    /// The sending rate during this MI, bytes/s.
    rate: f64,
    acked_bytes: u64,
    lost_bytes: u64,
    first_rtt: Option<(SimTime, f64)>,
    last_rtt: Option<(SimTime, f64)>,
}

impl Mi {
    fn new(role: MiRole, start: SimTime, rate: f64) -> Self {
        Mi {
            role,
            start,
            end: None,
            rate,
            acked_bytes: 0,
            lost_bytes: 0,
            first_rtt: None,
            last_rtt: None,
        }
    }

    fn contains(&self, t: SimTime) -> bool {
        t >= self.start && self.end.is_none_or(|e| t < e)
    }

    /// Vivace utility of this (finished) MI.
    fn utility(&self) -> f64 {
        let end = self.end.expect("utility of an open MI");
        let elapsed = end.saturating_since(self.start).as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let throughput_mbps = self.acked_bytes as f64 * 8.0 / 1e6 / elapsed;
        let total = self.acked_bytes + self.lost_bytes;
        let loss_rate = if total == 0 {
            0.0
        } else {
            self.lost_bytes as f64 / total as f64
        };
        let raw_gradient = match (self.first_rtt, self.last_rtt) {
            (Some((t0, r0)), Some((t1, r1))) if t1 > t0 => (r1 - r0) / (t1 - t0).as_secs_f64(),
            _ => 0.0,
        };
        let rtt_gradient = if raw_gradient.abs() < GRADIENT_DEAD_ZONE {
            0.0
        } else {
            raw_gradient
        };
        throughput_mbps.powf(EXPONENT)
            - B_LATENCY * throughput_mbps * rtt_gradient.max(0.0)
            - C_LOSS * throughput_mbps * loss_rate
    }
}

/// Controller phase (what the *next* MI should test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    SlowStart,
    /// Send the `r(1+ε)` probe next.
    ProbePairUp,
    /// Send the `r(1−ε)` probe next.
    ProbePairDown,
    /// Coast until the outstanding pair's utilities arrive.
    Waiting,
}

/// PCC Vivace congestion control.
#[derive(Debug, Clone)]
pub struct Vivace {
    mss: f64,
    phase: Phase,
    /// Base sending rate, bytes/s.
    rate: f64,
    /// Utility of the previous slow-start MI.
    prev_utility: Option<f64>,
    /// Utility of the pending pair's up-probe.
    pending_up: Option<f64>,
    /// Consecutive same-direction moves (confidence amplifier `m`).
    streak: u32,
    last_direction: i8,
    /// Open + unfinalized MIs, oldest first.
    mis: VecDeque<Mi>,
    /// MI length: max(srtt, MIN_MI), captured at MI start.
    mi_len: f64,
    started: bool,
}

impl Vivace {
    pub fn new(_seed: u64) -> Self {
        Vivace {
            mss: 1500.0,
            phase: Phase::SlowStart,
            rate: 10.0 * 1500.0 / 0.04, // ≈ 3 Mbps starting point
            prev_utility: None,
            pending_up: None,
            streak: 0,
            last_direction: 0,
            mis: VecDeque::new(),
            mi_len: MIN_MI,
            started: false,
        }
    }

    /// Current base rate, bytes/s.
    pub fn rate_bytes_per_sec(&self) -> f64 {
        self.rate
    }

    /// Rate for an MI with the given role.
    fn rate_for(&self, role: MiRole) -> f64 {
        match role {
            MiRole::ProbeUp => self.rate * (1.0 + EPSILON),
            MiRole::ProbeDown => self.rate * (1.0 - EPSILON),
            _ => self.rate,
        }
    }

    fn current_mi_rate(&self) -> f64 {
        self.mis.back().map(|m| m.rate).unwrap_or(self.rate)
    }

    fn step_fraction(&self) -> f64 {
        (STEP_BASE * (1 + self.streak) as f64).min(STEP_MAX)
    }

    /// Open the next MI according to the controller phase.
    fn open_next_mi(&mut self, now: SimTime, srtt: f64) {
        let role = match self.phase {
            Phase::SlowStart => MiRole::SlowStart,
            Phase::ProbePairUp => {
                self.phase = Phase::ProbePairDown;
                MiRole::ProbeUp
            }
            Phase::ProbePairDown => {
                self.phase = Phase::Waiting;
                MiRole::ProbeDown
            }
            Phase::Waiting => MiRole::Neutral,
        };
        let rate = self.rate_for(role);
        self.mis.push_back(Mi::new(role, now, rate));
        self.mi_len = srtt.max(MIN_MI);
        // Bound memory if finalization stalls (e.g. heavy loss).
        while self.mis.len() > 64 {
            self.mis.pop_front();
        }
    }

    /// Consume a finalized MI's utility.
    fn on_mi_utility(&mut self, role: MiRole, rate: f64, u: f64) {
        if std::env::var_os("BBRDOM_VIVACE_TRACE").is_some() {
            eprintln!(
                "vivace: finalize role={role:?} rate={:.2}Mbps u={u:.2} base={:.2}Mbps",
                rate * 8.0 / 1e6,
                self.rate * 8.0 / 1e6
            );
        }
        match role {
            MiRole::SlowStart => {
                match self.prev_utility {
                    Some(prev) if u < prev => {
                        // Overshot: fall back to the last good rate. The
                        // decision lags ~1 RTT, so a couple more doubled
                        // MIs are already in flight; `rate/2` of the
                        // *measured* MI is the last known-good level.
                        if self.phase == Phase::SlowStart {
                            self.rate = (rate / 2.0).max(MIN_RATE);
                            self.phase = Phase::ProbePairUp;
                            self.prev_utility = None;
                        }
                    }
                    _ => {
                        self.prev_utility = Some(u);
                        if self.phase == Phase::SlowStart {
                            self.rate = (rate * 2.0).max(MIN_RATE);
                        }
                    }
                }
            }
            MiRole::ProbeUp => {
                self.pending_up = Some(u);
            }
            MiRole::ProbeDown => {
                let u_up = self.pending_up.take().unwrap_or(u);
                let dir: i8 = if u_up >= u { 1 } else { -1 };
                if dir == self.last_direction {
                    self.streak += 1;
                } else {
                    self.streak = 0;
                    self.last_direction = dir;
                }
                let step = self.step_fraction();
                if dir > 0 {
                    self.rate *= 1.0 + step;
                } else {
                    self.rate *= 1.0 - step;
                }
                self.rate = self.rate.max(MIN_RATE);
                if self.phase == Phase::Waiting {
                    self.phase = Phase::ProbePairUp;
                }
            }
            MiRole::Neutral => {}
        }
    }

    /// Attribute an ACK to the MI its packet was sent in, finalize any
    /// MIs proven complete, and rotate the sending MI on schedule.
    fn process_ack(&mut self, ack: &AckSample, srtt: f64) {
        if !self.started {
            self.started = true;
            self.mis
                .push_back(Mi::new(MiRole::SlowStart, ack.now, self.rate));
            self.mi_len = srtt.max(MIN_MI);
        }
        // Send-time of the ACKed packet (Karn: retransmits carry no RTT
        // sample; attribute those to the oldest open MI's losses only).
        if let Some(rtt) = ack.rtt {
            let sent_at = SimTime(ack.now.as_nanos().saturating_sub(rtt.as_nanos()));
            for mi in self.mis.iter_mut() {
                if mi.contains(sent_at) {
                    mi.acked_bytes += ack.acked_bytes;
                    mi.lost_bytes += ack.newly_lost_bytes;
                    let entry = (ack.now, rtt.as_secs_f64());
                    if mi.first_rtt.is_none() {
                        mi.first_rtt = Some(entry);
                    }
                    mi.last_rtt = Some(entry);
                    break;
                }
            }
            // Finalize every closed MI that this ACK proves drained.
            while let Some(front) = self.mis.front() {
                match front.end {
                    Some(end) if sent_at >= end => {
                        let mi = self.mis.pop_front().expect("front exists");
                        self.on_mi_utility(mi.role, mi.rate, mi.utility());
                    }
                    _ => break,
                }
            }
        }
        // Rotate the sending MI when its duration elapses.
        let rotate = match self.mis.back() {
            Some(open) if open.end.is_none() => {
                ack.now.saturating_since(open.start).as_secs_f64() >= self.mi_len
            }
            _ => self.mis.is_empty(),
        };
        if rotate {
            if let Some(open) = self.mis.back_mut() {
                if open.end.is_none() {
                    open.end = Some(ack.now);
                }
            }
            self.open_next_mi(ack.now, srtt);
        }
    }
}

impl CongestionControl for Vivace {
    fn name(&self) -> &'static str {
        "vivace"
    }

    fn on_ack(&mut self, ack: &AckSample, view: &FlowView) {
        self.mss = view.mss as f64;
        let srtt = view.srtt.map(|d| d.as_secs_f64()).unwrap_or(MIN_MI);
        self.process_ack(ack, srtt);
    }

    fn on_congestion_event(&mut self, _now: SimTime, _view: &FlowView) {
        // Loss enters the utility; no immediate reaction.
    }

    fn on_rto(&mut self, _now: SimTime, _view: &FlowView) {
        self.rate = (self.rate / 2.0).max(MIN_RATE);
        self.phase = Phase::ProbePairUp;
        self.streak = 0;
        self.pending_up = None;
        self.prev_utility = None;
    }

    fn cwnd_bytes(&self) -> u64 {
        // Generous cap so pacing, not the window, shapes the rate: two
        // seconds' worth of the current MI rate over a 200 ms horizon.
        ((2.0 * self.current_mi_rate() * 0.2).max(4.0 * self.mss)) as u64
    }

    fn pacing_rate(&self) -> Option<f64> {
        Some(self.current_mi_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::run_dumbbell;
    use bbrdom_netsim::time::SimDuration;

    fn finished_mi(role: MiRole, acked: u64, lost: u64, secs: f64) -> Mi {
        let mut mi = Mi::new(role, SimTime::ZERO, 1e6);
        mi.end = Some(SimTime::from_secs_f64(secs));
        mi.acked_bytes = acked;
        mi.lost_bytes = lost;
        mi
    }

    #[test]
    fn utility_prefers_higher_throughput_without_penalty() {
        let a = finished_mi(MiRole::Neutral, 1_000_000, 0, 1.0);
        let b = finished_mi(MiRole::Neutral, 2_000_000, 0, 1.0);
        assert!(b.utility() > a.utility());
    }

    #[test]
    fn utility_penalizes_loss() {
        let clean = finished_mi(MiRole::Neutral, 1_000_000, 0, 1.0);
        let lossy = finished_mi(MiRole::Neutral, 1_000_000, 100_000, 1.0);
        assert!(lossy.utility() < clean.utility());
    }

    #[test]
    fn utility_penalizes_rtt_growth_beyond_dead_zone() {
        let mut flat = finished_mi(MiRole::Neutral, 1_000_000, 0, 1.0);
        flat.first_rtt = Some((SimTime::ZERO, 0.04));
        flat.last_rtt = Some((SimTime::from_secs_f64(1.0), 0.04));
        let mut rising = flat;
        rising.last_rtt = Some((SimTime::from_secs_f64(1.0), 0.09)); // 0.05 s/s
        assert!(rising.utility() < flat.utility());
        // Sub-dead-zone jitter is ignored.
        let mut jitter = flat;
        jitter.last_rtt = Some((SimTime::from_secs_f64(1.0), 0.045)); // 0.005 s/s
        assert!((jitter.utility() - flat.utility()).abs() < 1e-9);
    }

    #[test]
    fn ack_attribution_uses_send_time() {
        let mut v = Vivace::new(0);
        let view = FlowView {
            mss: 1500,
            srtt: Some(SimDuration::from_millis(40)),
            min_rtt: Some(SimDuration::from_millis(40)),
            inflight_bytes: 0,
            delivered_bytes: 0,
            in_recovery: false,
        };
        // First ACK at t=100ms with rtt=40ms: starts the first MI.
        let ack = |now_ms: u64| AckSample {
            now: SimTime::from_secs_f64(now_ms as f64 / 1e3),
            acked_bytes: 1500,
            rtt: Some(SimDuration::from_millis(40)),
            delivery_rate: None,
            delivered_total: 0,
            packet_delivered_at_send: 0,
            inflight_bytes: 0,
            newly_lost_bytes: 0,
        };
        v.on_ack(&ack(100), &view);
        assert_eq!(v.mis.len(), 1);
        // ACKs up to 140ms: same MI; at 140ms the MI rotates.
        v.on_ack(&ack(120), &view);
        v.on_ack(&ack(141), &view);
        assert_eq!(v.mis.len(), 2, "MI should rotate after mi_len elapses");
        // An ACK at 182 ms was sent at 142 ms ≥ the first MI's end
        // (141 ms), proving the first MI drained: it gets finalized.
        // (The same call also rotates the now-41 ms-old second MI, so
        // the deque holds MIs 2 and 3 — the oldest must be MI 2.)
        v.on_ack(&ack(182), &view);
        assert_eq!(v.mis.len(), 2);
        assert_eq!(
            v.mis.front().unwrap().start,
            SimTime::from_secs_f64(0.141),
            "first MI should be finalized and gone"
        );
    }

    #[test]
    fn slow_start_doubles_until_utility_drops() {
        let mut v = Vivace::new(0);
        let r0 = v.rate;
        v.phase = Phase::SlowStart;
        v.on_mi_utility(MiRole::SlowStart, r0, 10.0);
        assert!((v.rate - 2.0 * r0).abs() < 1e-6);
        v.on_mi_utility(MiRole::SlowStart, v.rate, 25.0);
        assert!((v.rate - 4.0 * r0).abs() < 1e-6);
        // Utility drop: fall back to half the measured MI's rate.
        let measured = v.rate;
        v.on_mi_utility(MiRole::SlowStart, measured, 5.0);
        assert!((v.rate - measured / 2.0).abs() < 1e-6);
        assert_eq!(v.phase, Phase::ProbePairUp);
    }

    #[test]
    fn probe_pair_moves_rate_toward_better_utility() {
        let mut v = Vivace::new(0);
        v.phase = Phase::Waiting;
        v.rate = 1e6;
        v.on_mi_utility(MiRole::ProbeUp, 1.05e6, 10.0);
        v.on_mi_utility(MiRole::ProbeDown, 0.95e6, 8.0);
        assert!(v.rate > 1e6, "up-probe won; rate must rise");
        let r = v.rate;
        v.phase = Phase::Waiting;
        v.on_mi_utility(MiRole::ProbeUp, r * 1.05, 5.0);
        v.on_mi_utility(MiRole::ProbeDown, r * 0.95, 9.0);
        assert!(v.rate < r, "down-probe won; rate must fall");
    }

    #[test]
    fn confidence_streak_grows_step() {
        let mut v = Vivace::new(0);
        v.last_direction = 1;
        v.streak = 0;
        assert!((v.step_fraction() - STEP_BASE).abs() < 1e-12);
        v.streak = 4;
        assert!((v.step_fraction() - 5.0 * STEP_BASE).abs() < 1e-12);
        v.streak = 100;
        assert!((v.step_fraction() - STEP_MAX).abs() < 1e-12);
    }

    #[test]
    fn single_vivace_flow_fills_link() {
        let report = run_dumbbell(20.0, 40, 2.0, 30.0, vec![Box::new(Vivace::new(0))]);
        let tp = report.flows[0].throughput_mbps();
        assert!(tp > 14.0, "vivace throughput={tp}");
    }

    #[test]
    fn vivace_competes_with_cubic() {
        // Fig. 7: Vivace is not starved by CUBIC; it keeps a substantial
        // share at a 2 BDP buffer.
        let report = run_dumbbell(
            100.0,
            40,
            2.0,
            60.0,
            vec![
                Box::new(Vivace::new(0)),
                Box::new(crate::cubic::Cubic::new()),
            ],
        );
        let vivace = report.flows[0].throughput_mbps();
        assert!(vivace > 25.0, "vivace={vivace}");
    }
}
