//! # bbrdom-cca — congestion-control algorithms, from scratch
//!
//! The algorithms the paper exercises (plus Vegas, for its related-work
//! §6 context), implemented as pure state machines against
//! [`bbrdom_netsim::cc::CongestionControl`]:
//!
//! | Module | Algorithm | Reference |
//! |--------|-----------|-----------|
//! | [`cubic`]   | TCP CUBIC (Linux parameters: C = 0.4, β = 0.7)     | Ha, Rhee & Xu, 2008 / RFC 8312 |
//! | [`newreno`] | TCP NewReno (AIMD, β = 0.5)                         | RFC 5681/6582 |
//! | [`bbr`]     | BBRv1 (Startup/Drain/ProbeBW/ProbeRTT, 2×BDP cap)   | Cardwell et al., 2016/17 |
//! | [`bbrv2`]   | BBRv2 (loss-bounded, headroom, slower ProbeRTT)     | IETF draft-cardwell-iccrg-bbr-congestion-control-02 |
//! | [`copa`]    | Copa (default + TCP-competitive modes)              | Arun & Balakrishnan, NSDI '18 |
//! | [`vivace`]  | PCC Vivace (online-learning rate control)           | Dong et al., NSDI '18 |
//! | [`vegas`]   | TCP Vegas (delay-based AIAD)                        | Brakmo & Peterson, 1994 |
//!
//! Each implementation documents exactly which simplifications were made
//! relative to the production code (see module docs); the behaviours the
//! paper's model depends on — CUBIC's multiplicative back-off *to* 0.7,
//! BBR's 2×BDP in-flight cap and 10-second ProbeRTT cadence — are faithful.
//!
//! [`registry::CcaKind`] gives experiment code a name → factory mapping.

pub mod bbr;
pub mod bbrv2;
pub mod copa;
pub mod cubic;
pub mod newreno;
pub mod registry;
pub mod util;
pub mod vegas;
pub mod vivace;

pub use bbr::Bbr;
pub use bbrv2::BbrV2;
pub use copa::Copa;
pub use cubic::Cubic;
pub use newreno::NewReno;
pub use registry::CcaKind;
pub use vegas::Vegas;
pub use vivace::Vivace;

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for driving a CCA against the real simulator.
    use bbrdom_netsim::cc::CongestionControl;
    use bbrdom_netsim::{FlowConfig, Rate, SimConfig, SimDuration, SimReport, Simulator};

    /// Run `ccs` through a dumbbell and return the report.
    pub fn run_dumbbell(
        mbps: f64,
        rtt_ms: u64,
        buffer_bdp: f64,
        secs: f64,
        ccs: Vec<Box<dyn CongestionControl>>,
    ) -> SimReport {
        let rate = Rate::from_mbps(mbps);
        let rtt = SimDuration::from_millis(rtt_ms);
        let buf = bbrdom_netsim::units::buffer_bytes(rate, rtt, buffer_bdp);
        let mut sim = Simulator::new(SimConfig::new(rate, buf, SimDuration::from_secs_f64(secs)));
        for cc in ccs {
            sim.add_flow(FlowConfig::new(cc, rtt));
        }
        sim.run()
    }
}
