//! Property-based tests for the CC algorithms' supporting structures and
//! state machines.

use bbrdom_cca::util::{RoundCounter, WindowedMax, WindowedMin};
use bbrdom_cca::{CcaKind, Cubic};
use bbrdom_netsim::cc::{AckSample, CongestionControl, FlowView};
use bbrdom_netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn view() -> FlowView {
    FlowView {
        mss: 1500,
        srtt: Some(SimDuration::from_millis(40)),
        min_rtt: Some(SimDuration::from_millis(40)),
        inflight_bytes: 0,
        delivered_bytes: 0,
        in_recovery: false,
    }
}

fn ack(now_s: f64) -> AckSample {
    AckSample {
        now: SimTime::from_secs_f64(now_s),
        acked_bytes: 1500,
        rtt: Some(SimDuration::from_millis(40)),
        delivery_rate: Some(1e6),
        delivered_total: 0,
        packet_delivered_at_send: 0,
        inflight_bytes: 0,
        newly_lost_bytes: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The windowed-max filter agrees with a brute-force reference.
    #[test]
    fn windowed_max_matches_reference(
        window in 1u64..20,
        samples in prop::collection::vec((0u64..5, 0.0f64..100.0), 1..100),
    ) {
        let mut filter = WindowedMax::new(window);
        let mut tick = 0u64;
        let mut history: Vec<(u64, f64)> = Vec::new();
        for (dt, v) in samples {
            tick += dt;
            filter.update(tick, v);
            history.push((tick, v));
            let cutoff = tick.saturating_sub(window);
            let expected = history
                .iter()
                .filter(|(t, _)| *t >= cutoff)
                .map(|(_, v)| *v)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((filter.get().unwrap() - expected).abs() < 1e-12);
        }
    }

    /// The windowed-min filter agrees with a brute-force reference.
    #[test]
    fn windowed_min_matches_reference(
        window in 1u64..20,
        samples in prop::collection::vec((0u64..5, 0.0f64..100.0), 1..100),
    ) {
        let mut filter = WindowedMin::new(window);
        let mut tick = 0u64;
        let mut history: Vec<(u64, f64)> = Vec::new();
        for (dt, v) in samples {
            tick += dt;
            filter.update(tick, v);
            history.push((tick, v));
            let cutoff = tick.saturating_sub(window);
            let expected = history
                .iter()
                .filter(|(t, _)| *t >= cutoff)
                .map(|(_, v)| *v)
                .fold(f64::INFINITY, f64::min);
            prop_assert!((filter.get().unwrap() - expected).abs() < 1e-12);
        }
    }

    /// Round counting is monotone and never skips on replayed deliveries.
    #[test]
    fn round_counter_monotone(
        deliveries in prop::collection::vec(1u64..3000, 1..200),
    ) {
        let mut rc = RoundCounter::new();
        let mut delivered = 0u64;
        let mut prev_rounds = 0;
        for d in deliveries {
            // A packet sent at some earlier delivered level.
            let sent_level = delivered.saturating_sub(d / 2);
            delivered += d;
            rc.on_ack(sent_level, delivered);
            prop_assert!(rc.rounds() >= prev_rounds);
            prop_assert!(rc.rounds() <= prev_rounds + 1);
            prev_rounds = rc.rounds();
        }
    }

    /// CUBIC's window stays positive and finite under arbitrary
    /// interleavings of ACKs and congestion events, and every back-off
    /// outside slow start lands at exactly 0.7×.
    #[test]
    fn cubic_window_invariants(
        events in prop::collection::vec(prop::bool::weighted(0.1), 10..300),
    ) {
        let mut c = Cubic::new();
        let v = view();
        let mut t = 0.0;
        for is_loss in events {
            t += 0.002;
            if is_loss {
                let before = c.cwnd_mss();
                c.on_congestion_event(SimTime::from_secs_f64(t), &v);
                let after = c.cwnd_mss();
                prop_assert!(after <= before);
                if before * 0.7 >= 2.0 {
                    prop_assert!((after - before * 0.7).abs() < 1e-9,
                        "backoff to {} from {}", after, before);
                }
            } else {
                c.on_ack(&ack(t), &v);
            }
            prop_assert!(c.cwnd_mss().is_finite());
            prop_assert!(c.cwnd_mss() >= 1.0);
            prop_assert!(c.cwnd_bytes() < u64::MAX / 2);
        }
    }

    /// Every registered algorithm survives an arbitrary event stream
    /// without panicking, and always reports a sane window.
    #[test]
    fn all_ccas_survive_arbitrary_events(
        kind_ix in 0usize..7,
        events in prop::collection::vec(0u8..10, 10..200),
    ) {
        let kind = CcaKind::ALL[kind_ix];
        let mut cc = kind.build(1);
        let v = view();
        let mut t = 0.0;
        let mut delivered = 0u64;
        for e in events {
            t += 0.003;
            match e {
                0 => cc.on_congestion_event(SimTime::from_secs_f64(t), &v),
                1 => cc.on_rto(SimTime::from_secs_f64(t), &v),
                _ => {
                    delivered += 1500;
                    let mut a = ack(t);
                    a.delivered_total = delivered;
                    a.packet_delivered_at_send = delivered.saturating_sub(30_000);
                    cc.on_ack(&a, &v);
                }
            }
            let w = cc.cwnd_bytes();
            prop_assert!(w >= 1500, "{} cwnd collapsed to {w}", kind.name());
            prop_assert!(w < 1u64 << 40, "{} cwnd exploded to {w}", kind.name());
            if let Some(r) = cc.pacing_rate() {
                prop_assert!(r.is_finite() && r > 0.0);
            }
        }
    }
}
