//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! crates.io mirror, so the workspace vendors the *tiny* subset of `rand`
//! it actually uses: a seedable PRNG ([`rngs::StdRng`]) and uniform range
//! sampling via [`Rng::gen_range`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — statistically strong for simulation jitter, and
//! deterministic for a given seed (which is all the simulator needs; see
//! `SimConfig::ack_jitter`).
//!
//! The streams differ from upstream `rand`'s ChaCha12-based `StdRng`, so
//! absolute simulation outputs differ from runs made with the real crate.
//! Nothing in this repository asserts golden values — only run-to-run
//! determinism — so this is safe.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open, `low..high`).
    ///
    /// Panics if the range is empty, matching upstream behaviour.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 significant bits, the standard conversion.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                // Debiased multiply-shift (Lemire); span ≥ 1 here.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start + (m >> 64) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

/// Pre-built generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++.
    ///
    /// Not the same stream as upstream `rand`'s ChaCha12 `StdRng`, but
    /// seedable, fast, and deterministic — the properties the simulator
    /// relies on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn int_range_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0u64..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&v));
        }
    }

    #[test]
    fn float_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5u64..5);
    }
}
