//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendors the
//! subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header,
//! * range strategies (`0u64..10`, `0.5f64..4.0`, …),
//! * tuple strategies (pairs of strategies),
//! * [`collection::vec`](prop::collection::vec) with a fixed or ranged
//!   length, and [`bool::weighted`](prop::bool::weighted),
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from upstream: failing cases are **not shrunk** (the
//! panic message includes the generated inputs via the assertion text
//! plus the case seed, which reproduces the case deterministically), and
//! sampling is plain uniform rather than bias-toward-edge-cases. Each
//! test function derives its RNG seed from its own name, so runs are
//! fully deterministic from build to build.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::ops::Range;

/// Per-test configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator: maps an RNG draw to a test input.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Strategy namespace mirroring upstream's `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// Generate a `Vec` whose elements come from `element` and whose
        /// length is drawn from `size` (a fixed `usize` or a `Range`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::WeightedBool;

        /// A `bool` that is `true` with probability `p`.
        pub fn weighted(p: f64) -> WeightedBool {
            WeightedBool { p }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{OptionStrategy, Strategy};

        /// An `Option` that is `Some(inner)` half the time.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

/// Length specification for [`prop::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing vectors (see [`prop::collection::vec`]).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = rand::Rng::gen_range(rng, self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy producing biased booleans (see [`prop::bool::weighted`]).
#[derive(Debug, Clone, Copy)]
pub struct WeightedBool {
    p: f64,
}

impl Strategy for WeightedBool {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rand::Rng::gen_bool(rng, self.p)
    }
}

/// Strategy producing `Option`s (see [`prop::option::of`]).
#[derive(Debug, Clone, Copy)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        if rand::Rng::gen_bool(rng, 0.5) {
            Some(self.inner.sample(rng))
        } else {
            None
        }
    }
}

/// Everything a property-test file needs, mirroring upstream's prelude.
pub mod prelude {
    pub use super::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Deterministic per-test seed: FNV-1a over the test's name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Build the RNG for one case. Public for the macro's use.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // Mix the case index through the generator rather than the seed so
    // cases are decorrelated draws of one deterministic stream.
    let mut rng =
        StdRng::seed_from_u64(seed_for(test_name) ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let _ = rng.next_u64();
    rng
}

/// Assert inside a property (no shrinking; behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property (behaves like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// The property-test entry point: declares `#[test]` functions whose
/// arguments are drawn from strategies.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     // In a real test file this fn would also carry `#[test]`.
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                // The body is a plain block; a panic carries the case
                // number via this wrapper's unwind message context.
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_in_bounds(a in 3u64..17, b in -1.5f64..2.5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-1.5..2.5).contains(&b));
        }

        /// Vec strategies respect both fixed and ranged lengths.
        #[test]
        fn vec_lengths(
            fixed in prop::collection::vec(0u32..5, 7),
            ranged in prop::collection::vec((0u64..3, 0.0f64..1.0), 1..4),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((1..4).contains(&ranged.len()));
        }

        /// Option strategies produce in-bounds inner values when `Some`.
        #[test]
        fn option_in_bounds(opt in prop::option::of(2u32..9)) {
            if let Some(v) = opt {
                prop_assert!((2..9).contains(&v));
            }
        }
    }

    #[test]
    fn option_hits_both_variants() {
        use crate::Strategy;
        let s = crate::prop::option::of(0u32..10);
        let mut rng = crate::case_rng("option", 0);
        let somes = (0..100).filter(|_| s.sample(&mut rng).is_some()).count();
        assert!(somes > 20 && somes < 80, "somes={somes}");
    }

    #[test]
    fn weighted_bool_hits_both_sides() {
        use crate::Strategy;
        let s = crate::prop::bool::weighted(0.3);
        let mut rng = crate::case_rng("weighted", 0);
        let trues = (0..1000).filter(|_| s.sample(&mut rng)).count();
        assert!(trues > 200 && trues < 400, "trues={trues}");
    }

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(crate::seed_for("x"), crate::seed_for("x"));
        assert_ne!(crate::seed_for("x"), crate::seed_for("y"));
    }
}
