//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendors a
//! minimal wall-clock benchmarking harness exposing the API surface the
//! workspace's benches use: [`Criterion::benchmark_group`], group
//! [`sample_size`](BenchmarkGroup::sample_size) /
//! [`throughput`](BenchmarkGroup::throughput) /
//! [`bench_function`](BenchmarkGroup::bench_function), plus the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It reports median / mean / min per-iteration wall time (and elements
//! per second when a throughput is configured) to stdout. It does **not**
//! do criterion's outlier rejection, warm-up calibration, or HTML
//! reports — numbers are comparable run-to-run on an idle machine, which
//! is what the repo's perf gate (`netsim_perf`, see
//! `docs/OBSERVABILITY.md`) needs.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level harness handle, one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run one stand-alone benchmark (upstream's
    /// `Criterion::bench_function`); reported under the bare `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("").bench_function(id, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Units-of-work declaration for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing sizing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to collect (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for elements/sec reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mut samples = b.samples;
        assert!(
            !samples.is_empty(),
            "bench_function closure never called iter()"
        );
        samples.sort();
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples[0];
        let label = if self.name.is_empty() {
            id.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        print!("{label:<32} median {median:>12.3?}  mean {mean:>12.3?}  min {min:>12.3?}");
        if let Some(t) = self.throughput {
            let per_sec = |n: u64| n as f64 / median.as_secs_f64();
            match t {
                Throughput::Elements(n) => print!("  {:>12.0} elem/s", per_sec(n)),
                Throughput::Bytes(n) => print!("  {:>12.0} B/s", per_sec(n)),
            }
        }
        println!();
        self
    }

    /// End the group (upstream flushes reports here; we print eagerly).
    pub fn finish(&mut self) {}
}

/// Collects timed iterations for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`: one un-timed warm-up call, then `sample_size` timed
    /// samples. The return value is passed through `black_box` so the
    /// optimizer cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up: page in code/data, fill caches
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declare a bench group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        let mut calls = 0u64;
        g.sample_size(5)
            .throughput(Throughput::Elements(10))
            .bench_function("count_calls", |b| {
                b.iter(|| {
                    calls += 1;
                    calls
                })
            });
        g.finish();
        // 1 warm-up + 5 timed samples.
        assert_eq!(calls, 6);
    }

    #[test]
    #[should_panic]
    fn missing_iter_panics() {
        let mut c = Criterion::default();
        c.benchmark_group("test").bench_function("noop", |_b| {});
    }
}
