//! # bbrdom — *Are we heading towards a BBR-dominant Internet?* (IMC '22), in Rust
//!
//! This crate is the umbrella facade over the workspace that reproduces
//! Mishra, Tiu & Leong's IMC 2022 paper. It re-exports the four member
//! crates so downstream users (and this repository's `examples/` and
//! `tests/`) can write `use bbrdom::...` for everything:
//!
//! * [`model`] / [`game`] — the paper's contribution: the CUBIC-vs-BBR
//!   throughput model (2-flow and multi-flow, Eqs. 5–24), the Ware et al.
//!   baseline (Eqs. 2–4), Nash-equilibrium prediction (Eq. 25), and the
//!   normal-form game machinery.
//! * [`netsim`] — the packet-level discrete-event dumbbell simulator that
//!   stands in for the paper's Linux testbed.
//! * [`cca`] — from-scratch congestion-control algorithms: CUBIC, NewReno,
//!   BBRv1, BBRv2, Copa, PCC Vivace.
//! * [`experiments`] — scenario harness that regenerates every figure.
//!
//! ## Quickstart
//!
//! ```
//! use bbrdom::model::TwoFlowModel;
//!
//! // Predict BBR's share of a 50 Mbps, 40 ms bottleneck with an 8-BDP buffer.
//! let model = TwoFlowModel::from_paper_units(50.0, 40.0, 8.0);
//! let pred = model.solve().expect("valid configuration");
//! assert!(pred.bbr_mbps() > 0.0 && pred.bbr_mbps() < 50.0);
//! ```

pub use bbrdom_cca as cca;
pub use bbrdom_core::game;
pub use bbrdom_core::model;
pub use bbrdom_experiments as experiments;
pub use bbrdom_netsim as netsim;
